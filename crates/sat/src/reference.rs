//! The retained *reference* solver: the pre-arena CDCL implementation
//! (`Vec<Clause>` storage, plain `ClauseRef = usize` watcher lists, f64
//! clause activities, rebuild-style `reduce_db`). It is kept verbatim for
//! two jobs:
//!
//! 1. **Differential fuzzing** — `tests/arena_vs_reference.rs` checks the
//!    arena solver against this one on random CNFs: SAT/UNSAT verdicts
//!    must agree, models must satisfy the formula, and each solver's
//!    failed-assumption core must refute in the other.
//! 2. **Throughput baseline** — the `baseline-solver` cargo feature swaps
//!    the crate's default `Solver` export to this module so the whole
//!    detection stack can be measured pre-arena; the `solver_stats` bench
//!    bin also measures it directly for the `experiments/solver_stats.csv`
//!    speedup ratio.
//!
//! Semantics are identical to [`crate::solver::Solver`] (same decision
//! heuristic, same learning, same assumption handling); only the memory
//! layout differs, which legitimately perturbs the search order (the
//! arena's blocker fast path skips literal swaps the reference performs).
//! Both are deterministic on their own.

use crate::lit::{LBool, Lit, Var};
use crate::proof::ProofEvent;

pub use crate::solver::{SolveResult, SolverStats};

#[derive(Debug)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
    activity: f64,
}

type ClauseRef = usize;

/// A binary max-heap over variables ordered by VSIDS activity, with a
/// position index for O(log n) re-heapification when an activity is bumped.
/// Replaces the former O(vars) scan per decision in `pick_branch` — the
/// difference matters once pair solvers are retained across a whole repair
/// run and answer thousands of queries each.
///
/// Removal is lazy: variables stay in the heap when assigned and are simply
/// skipped (and dropped) at [`OrderHeap::pop_max`] time; backtracking
/// re-inserts the unassigned ones. Ties in activity break towards the lower
/// variable index, keeping decisions fully deterministic.
#[derive(Debug, Default)]
struct OrderHeap {
    heap: Vec<Var>,
    /// `pos[v]` is the index of `v` in `heap`, or `ABSENT`.
    pos: Vec<usize>,
}

impl OrderHeap {
    const ABSENT: usize = usize::MAX;

    /// "a ranks before b": strictly higher activity, ties by lower index.
    #[inline]
    fn before(activity: &[f64], a: Var, b: Var) -> bool {
        let (aa, ab) = (activity[a.index()], activity[b.index()]);
        aa > ab || (aa == ab && a.0 < b.0)
    }

    /// Registers a new variable slot (initially absent from the heap).
    fn push_var(&mut self) {
        self.pos.push(Self::ABSENT);
    }

    fn contains(&self, v: Var) -> bool {
        self.pos[v.index()] != Self::ABSENT
    }

    fn insert(&mut self, v: Var, activity: &[f64]) {
        if self.contains(v) {
            return;
        }
        self.pos[v.index()] = self.heap.len();
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, activity);
    }

    /// Restores the heap property after `v`'s activity increased.
    fn bumped(&mut self, v: Var, activity: &[f64]) {
        let i = self.pos[v.index()];
        if i != Self::ABSENT {
            self.sift_up(i, activity);
        }
    }

    /// Pops the highest-ranked variable, or `None` when empty.
    fn pop_max(&mut self, activity: &[f64]) -> Option<Var> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("non-empty");
        self.pos[top.index()] = Self::ABSENT;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last.index()] = 0;
            self.sift_down(0, activity);
        }
        Some(top)
    }

    fn sift_up(&mut self, mut i: usize, activity: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if !Self::before(activity, self.heap[i], self.heap[parent]) {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, activity: &[f64]) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut best = i;
            if l < self.heap.len() && Self::before(activity, self.heap[l], self.heap[best]) {
                best = l;
            }
            if r < self.heap.len() && Self::before(activity, self.heap[r], self.heap[best]) {
                best = r;
            }
            if best == i {
                return;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.pos[self.heap[i].index()] = i;
        self.pos[self.heap[j].index()] = j;
    }
}


/// A CDCL SAT solver.
///
/// The solver owns all of its state (no shared-memory interior), so it is
/// `Send` — a compile-time guarantee pinned below that the detection
/// engine relies on to migrate retained pair solvers between its workers.
/// It is *not* concurrency-safe (`&mut` access only); parallelism is the
/// callers' business, one solver per worker at a time.
///
/// # Examples
///
/// ```
/// use atropos_sat::reference::Solver;
/// use atropos_sat::Var;
///
/// let mut s = Solver::new();
/// let a = s.new_var();
/// let b = s.new_var();
/// s.add_clause([a.positive(), b.positive()]);
/// s.add_clause([a.negative()]);
/// let model = s.solve().model().unwrap().to_vec();
/// assert!(!model[a.index()] && model[b.index()]);
/// ```
#[derive(Debug)]
pub struct Solver {
    clauses: Vec<Clause>,
    watches: Vec<Vec<ClauseRef>>, // indexed by Lit::index
    assign: Vec<LBool>,
    level: Vec<u32>,
    reason: Vec<Option<ClauseRef>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    prop_head: usize,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    phase: Vec<bool>,
    order: OrderHeap, // VSIDS order heap (lazy removal of assigned vars)
    unsat: bool,
    stats: SolverStats,
    seen: Vec<bool>,
    failed: Vec<Lit>,
    num_learnt: usize,
    /// DRAT-style event log; `None` (the default) makes logging a no-op.
    proof: Option<Vec<ProofEvent>>,
}

// A retained solver must be able to migrate between detection workers; any
// non-Send field added to the solver stack should fail compilation here.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Solver>();
    assert_send::<SolveResult>();
};

const VAR_DECAY: f64 = 0.95;
const CLA_DECAY: f64 = 0.999;
const RESCALE: f64 = 1e100;

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Solver {
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            prop_head: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            phase: Vec::new(),
            order: OrderHeap::default(),
            unsat: false,
            stats: SolverStats::default(),
            seen: Vec::new(),
            failed: Vec::new(),
            num_learnt: 0,
            proof: None,
        }
    }

    /// Turns DRAT-style proof logging on or off; mirrors the arena
    /// solver's [`crate::solver::Solver::set_proof_logging`] so the
    /// `baseline-solver` feature swap (and the proof differential suite)
    /// stays source-compatible. Must be enabled before the first clause.
    pub fn set_proof_logging(&mut self, on: bool) {
        if on {
            debug_assert!(
                self.clauses.is_empty() && self.trail.is_empty(),
                "proof logging must be enabled before the first clause"
            );
            self.proof.get_or_insert_with(Vec::new);
        } else {
            self.proof = None;
        }
    }

    /// Whether proof logging is on.
    pub fn proof_logging(&self) -> bool {
        self.proof.is_some()
    }

    /// The DRAT-style events logged so far (empty when logging is off).
    pub fn proof_events(&self) -> &[ProofEvent] {
        self.proof.as_deref().unwrap_or(&[])
    }

    #[inline]
    fn log_proof(&mut self, event: impl FnOnce() -> ProofEvent) {
        if let Some(log) = self.proof.as_mut() {
            log.push(event());
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assign.len() as u32);
        self.assign.push(LBool::Undef);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.phase.push(false);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.push_var();
        self.order.insert(v, &self.activity);
        v
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Solver statistics so far.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Number of clauses currently stored (original plus retained learnt).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// After [`Solver::solve_with_assumptions`] returns
    /// [`SolveResult::Unsat`], the subset of the assumption literals whose
    /// conjunction already contradicts the formula (the *failed-assumption
    /// core*). Empty when the formula is unsatisfiable on its own.
    pub fn failed_assumptions(&self) -> &[Lit] {
        &self.failed
    }

    /// Imports learnt clauses exported by a fingerprint-identical solver
    /// (see [`Solver::retained_learnts`]); mirrors the arena solver's API
    /// so the `baseline-solver` feature swap stays source-compatible.
    pub fn import_learnts<'a, I>(&mut self, clauses: I) -> usize
    where
        I: IntoIterator<Item = &'a [Lit]>,
    {
        debug_assert!(self.trail_lim.is_empty(), "import happens at the root");
        let mut installed = 0usize;
        for clause in clauses {
            if self.unsat {
                break;
            }
            let mut lits: Vec<Lit> = clause.to_vec();
            for l in &lits {
                assert!(l.var().index() < self.num_vars(), "unallocated variable");
            }
            lits.retain(|&l| self.value(l) != LBool::False);
            if lits.iter().any(|&l| self.value(l) == LBool::True) {
                continue;
            }
            // Same RUP gate as the arena solver: with proofs on, a pool
            // lemma is only installed (and logged) when reverse unit
            // propagation re-derives it against this solver's database.
            if self.proof.is_some() {
                if !self.seed_is_rup(&lits) {
                    continue;
                }
                self.log_proof(|| ProofEvent::Add(lits.clone()));
            }
            match lits.len() {
                0 => self.unsat = true,
                1 => {
                    installed += 1;
                    if !self.enqueue(lits[0], None) || self.propagate().is_some() {
                        self.unsat = true;
                    }
                }
                _ => {
                    installed += 1;
                    self.attach(lits, true);
                }
            }
        }
        installed
    }

    /// Reverse-unit-propagation check of one candidate clause; see the
    /// arena solver's `seed_is_rup` — identical semantics.
    fn seed_is_rup(&mut self, lits: &[Lit]) -> bool {
        debug_assert!(self.trail_lim.is_empty(), "RUP gate runs at the root");
        self.trail_lim.push(self.trail.len());
        let mut proved = false;
        for &l in lits {
            if !self.enqueue(!l, None) {
                proved = true;
                break;
            }
        }
        if !proved {
            proved = self.propagate().is_some();
        }
        self.backtrack(0);
        proved
    }

    /// Exports root facts and learnt clauses over the first `below_vars`
    /// variables — the baseline counterpart of the arena solver's
    /// [`crate::solver::Solver::retained_learnts`] (same soundness
    /// argument: base-projected consequences of the guarded extension are
    /// consequences of the base formula alone).
    pub fn retained_learnts(&self, below_vars: usize) -> Vec<Vec<Lit>> {
        debug_assert!(self.trail_lim.is_empty(), "export happens at the root");
        let mut out = Vec::new();
        for &l in &self.trail {
            if l.var().index() < below_vars {
                out.push(vec![l]);
            }
        }
        for c in &self.clauses {
            if c.learnt && c.lits.iter().all(|l| l.var().index() < below_vars) {
                out.push(c.lits.clone());
            }
        }
        out
    }

    /// Exports the stored problem (root facts as units, then every
    /// original clause) — the baseline counterpart of the arena solver's
    /// [`crate::solver::Solver::problem_clauses`], kept so the
    /// `baseline-solver` feature swap stays source-compatible.
    pub fn problem_clauses(&self) -> Vec<Vec<Lit>> {
        debug_assert!(self.trail_lim.is_empty(), "export happens at the root");
        let mut out = Vec::new();
        for &l in &self.trail {
            out.push(vec![l]);
        }
        for c in &self.clauses {
            if !c.learnt {
                out.push(c.lits.clone());
            }
        }
        out
    }

    fn value(&self, l: Lit) -> LBool {
        self.assign[l.var().index()].under(l.is_positive())
    }

    /// Adds a clause (a disjunction of literals).
    ///
    /// Duplicated literals are removed; tautologies are silently dropped; an
    /// empty clause makes the formula trivially unsatisfiable. Clauses may
    /// be added before the first solve and between solves (the solver
    /// returns to the root decision level after every call); previously
    /// learnt clauses stay valid because learning is deduction.
    ///
    /// # Panics
    ///
    /// Panics if a literal references an unallocated variable.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) {
        debug_assert!(
            self.trail_lim.is_empty(),
            "the solver is at the root level between solves"
        );
        let mut lits: Vec<Lit> = lits.into_iter().collect();
        for l in &lits {
            assert!(l.var().index() < self.num_vars(), "unallocated variable");
        }
        lits.sort();
        lits.dedup();
        // Tautology?
        for w in lits.windows(2) {
            if w[0].var() == w[1].var() {
                return;
            }
        }
        // Log the clause pre-simplification; see the arena solver.
        self.log_proof(|| ProofEvent::Input(lits.clone()));
        // Remove root-level falsified literals; detect satisfied clauses.
        lits.retain(|&l| self.value(l) != LBool::False);
        if lits.iter().any(|&l| self.value(l) == LBool::True) {
            return;
        }
        match lits.len() {
            0 => self.unsat = true,
            1 => {
                if !self.enqueue(lits[0], None) || self.propagate().is_some() {
                    self.unsat = true;
                }
            }
            _ => {
                self.attach(lits, false);
            }
        }
    }

    fn attach(&mut self, lits: Vec<Lit>, learnt: bool) -> ClauseRef {
        let cref = self.clauses.len();
        self.watches[(!lits[0]).index()].push(cref);
        self.watches[(!lits[1]).index()].push(cref);
        self.num_learnt += usize::from(learnt);
        self.clauses.push(Clause {
            lits,
            learnt,
            activity: 0.0,
        });
        cref
    }

    fn enqueue(&mut self, l: Lit, reason: Option<ClauseRef>) -> bool {
        match self.value(l) {
            LBool::True => true,
            LBool::False => false,
            LBool::Undef => {
                let v = l.var().index();
                self.assign[v] = LBool::from_bool(l.is_positive());
                self.level[v] = self.decision_level();
                self.reason[v] = reason;
                self.phase[v] = l.is_positive();
                self.trail.push(l);
                true
            }
        }
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Propagates all enqueued facts; returns a conflicting clause on conflict.
    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.prop_head < self.trail.len() {
            let p = self.trail[self.prop_head];
            self.prop_head += 1;
            self.stats.propagations += 1;
            let mut ws = std::mem::take(&mut self.watches[p.index()]);
            let mut i = 0;
            while i < ws.len() {
                let cref = ws[i];
                // The false literal must be at position 1.
                let (l0, l1) = {
                    let c = &mut self.clauses[cref];
                    if c.lits[0] == !p {
                        c.lits.swap(0, 1);
                    }
                    (c.lits[0], c.lits[1])
                };
                debug_assert_eq!(l1, !p);
                if self.value(l0) == LBool::True {
                    i += 1;
                    continue;
                }
                // Find a new literal to watch.
                let mut moved = false;
                let n = self.clauses[cref].lits.len();
                for k in 2..n {
                    let lk = self.clauses[cref].lits[k];
                    if self.value(lk) != LBool::False {
                        self.clauses[cref].lits.swap(1, k);
                        self.watches[(!lk).index()].push(cref);
                        ws.swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Clause is unit or conflicting.
                if !self.enqueue(l0, Some(cref)) {
                    self.watches[p.index()] = ws;
                    self.prop_head = self.trail.len();
                    return Some(cref);
                }
                i += 1;
            }
            self.watches[p.index()] = ws;
        }
        None
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > RESCALE {
            // Uniform rescaling preserves the relative order of every pair
            // of activities, so the heap invariant survives untouched.
            for a in &mut self.activity {
                *a /= RESCALE;
            }
            self.var_inc /= RESCALE;
        }
        self.order.bumped(v, &self.activity);
    }

    fn bump_clause(&mut self, cref: ClauseRef) {
        self.clauses[cref].activity += self.cla_inc;
        if self.clauses[cref].activity > RESCALE {
            for c in &mut self.clauses {
                c.activity /= RESCALE;
            }
            self.cla_inc /= RESCALE;
        }
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backtrack level.
    fn analyze(&mut self, conflict: ClauseRef) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::new(Var(0), true)]; // placeholder for UIP
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut cref = conflict;
        let mut idx = self.trail.len();
        let current = self.decision_level();

        loop {
            self.bump_clause(cref);
            let lits: Vec<Lit> = self.clauses[cref].lits.clone();
            let skip_first = p.is_some();
            for (k, &q) in lits.iter().enumerate() {
                if skip_first && k == 0 {
                    continue;
                }
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    self.bump_var(v);
                    if self.level[v.index()] == current {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Find next literal on the trail to resolve on.
            loop {
                idx -= 1;
                if self.seen[self.trail[idx].var().index()] {
                    break;
                }
            }
            let lit = self.trail[idx];
            self.seen[lit.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                p = Some(lit);
                break;
            }
            cref = self.reason[lit.var().index()].expect("non-decision must have a reason");
            p = Some(lit);
        }
        learnt[0] = !p.expect("UIP exists");

        // Compute backtrack level (second-highest level in the clause).
        let bt = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()]
        };
        for &l in &learnt {
            self.seen[l.var().index()] = false;
        }
        (learnt, bt)
    }

    fn backtrack(&mut self, level: u32) {
        while self.decision_level() > level {
            let lim = self.trail_lim.pop().expect("level > 0");
            for &l in &self.trail[lim..] {
                let v = l.var();
                self.assign[v.index()] = LBool::Undef;
                self.reason[v.index()] = None;
                self.order.insert(v, &self.activity);
            }
            self.trail.truncate(lim);
        }
        self.prop_head = self.trail.len();
    }

    fn pick_branch(&mut self) -> Option<Lit> {
        while let Some(v) = self.order.pop_max(&self.activity) {
            if self.assign[v.index()] == LBool::Undef {
                return Some(Lit::new(v, self.phase[v.index()]));
            }
        }
        None
    }

    fn reduce_db(&mut self) {
        // Delete the lower-activity half of removable learnt clauses by
        // rebuilding the clause store (keeps refs dense and watches exact).
        let mut acts: Vec<f64> = self
            .clauses
            .iter()
            .filter(|c| c.learnt && c.lits.len() > 2)
            .map(|c| c.activity)
            .collect();
        if acts.len() < 2 {
            return;
        }
        acts.sort_by(|a, b| a.partial_cmp(b).expect("activities are finite"));
        let median = acts[acts.len() / 2];

        let locked: Vec<Option<ClauseRef>> = self.reason.clone();
        let is_locked = |cref: ClauseRef, c: &Clause, solver_assign: &[LBool]| -> bool {
            let l0 = c.lits[0];
            solver_assign[l0.var().index()] != LBool::Undef
                && locked[l0.var().index()] == Some(cref)
        };

        let old = std::mem::take(&mut self.clauses);
        let mut remap: Vec<Option<ClauseRef>> = vec![None; old.len()];
        for w in &mut self.watches {
            w.clear();
        }
        for (old_ref, c) in old.into_iter().enumerate() {
            let keep = !c.learnt
                || c.lits.len() <= 2
                || c.activity >= median
                || is_locked(old_ref, &c, &self.assign);
            if keep {
                let new_ref = self.clauses.len();
                remap[old_ref] = Some(new_ref);
                self.watches[(!c.lits[0]).index()].push(new_ref);
                self.watches[(!c.lits[1]).index()].push(new_ref);
                self.clauses.push(c);
            } else {
                if self.proof.is_some() {
                    let lits = c.lits.clone();
                    self.log_proof(|| ProofEvent::Delete(lits));
                }
                self.stats.deleted += 1;
                self.num_learnt -= 1;
            }
        }
        for r in &mut self.reason {
            *r = r.and_then(|old_ref| remap[old_ref]);
        }
    }

    /// Computes the failed-assumption core once assumption `p` was found
    /// falsified: the subset of already-applied assumption decisions whose
    /// propagation closure implies `¬p`, plus `p` itself. Mirrors MiniSat's
    /// `analyzeFinal`, except the core is reported as the assumption
    /// literals themselves (their conjunction is inconsistent with the
    /// formula).
    fn analyze_final(&mut self, p: Lit) {
        self.failed.clear();
        self.failed.push(p);
        if self.decision_level() == 0 {
            return;
        }
        self.seen[p.var().index()] = true;
        for i in (self.trail_lim[0]..self.trail.len()).rev() {
            let q = self.trail[i];
            let v = q.var().index();
            if !self.seen[v] {
                continue;
            }
            self.seen[v] = false;
            match self.reason[v] {
                // Decisions below the branching levels are assumptions.
                None => self.failed.push(q),
                Some(cref) => {
                    for k in 1..self.clauses[cref].lits.len() {
                        let l = self.clauses[cref].lits[k];
                        if self.level[l.var().index()] > 0 {
                            self.seen[l.var().index()] = true;
                        }
                    }
                }
            }
        }
        self.seen[p.var().index()] = false;
    }

    /// Runs the CDCL loop to completion with no assumptions.
    ///
    /// Equivalent to `solve_with_assumptions(&[])`; the solver may be
    /// re-used (and extended with clauses) afterwards.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with_assumptions(&[])
    }

    /// Decides the formula under the conjunction of `assumptions`.
    ///
    /// Assumptions act like unit clauses scoped to this one call: they are
    /// installed as the bottom-most decisions, so everything learnt while
    /// solving remains valid for later calls with different assumptions.
    /// On [`SolveResult::Unsat`], [`Solver::failed_assumptions`] holds an
    /// inconsistent subset of `assumptions` (empty if the formula itself is
    /// unsatisfiable). The solver backtracks to the root level before
    /// returning, so clauses may be added afterwards.
    ///
    /// # Panics
    ///
    /// Panics if an assumption references an unallocated variable.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.failed.clear();
        for l in assumptions {
            assert!(l.var().index() < self.num_vars(), "unallocated assumption");
        }
        if self.unsat {
            return SolveResult::Unsat;
        }
        self.backtrack(0);
        // Re-run root propagation: clauses added since the last call may
        // have enqueued new root facts.
        if self.propagate().is_some() {
            self.unsat = true;
            return SolveResult::Unsat;
        }
        let mut conflicts_until_restart = luby(self.stats.restarts) * 100;
        // Budget learnt clauses against the *original* clause count so the
        // limit does not creep upwards across incremental calls.
        let mut learnt_limit = ((self.clauses.len() - self.num_learnt) / 3).max(2000);
        loop {
            if let Some(conflict) = self.propagate() {
                self.stats.conflicts += 1;
                if self.decision_level() == 0 {
                    self.unsat = true;
                    return SolveResult::Unsat;
                }
                let (learnt, bt) = self.analyze(conflict);
                // First-UIP clauses are RUP over the live database; see
                // the arena solver's identical hook.
                self.log_proof(|| ProofEvent::Add(learnt.clone()));
                self.backtrack(bt);
                if learnt.len() == 1 {
                    let ok = self.enqueue(learnt[0], None);
                    debug_assert!(ok, "asserting literal must be enqueueable");
                } else {
                    let cref = self.attach(learnt.clone(), true);
                    self.bump_clause(cref);
                    let ok = self.enqueue(learnt[0], Some(cref));
                    debug_assert!(ok, "asserting literal must be enqueueable");
                }
                self.var_inc /= VAR_DECAY;
                self.cla_inc /= CLA_DECAY;
                conflicts_until_restart = conflicts_until_restart.saturating_sub(1);
            } else {
                if conflicts_until_restart == 0 {
                    self.stats.restarts += 1;
                    conflicts_until_restart = luby(self.stats.restarts) * 100;
                    self.backtrack(0);
                }
                if self.num_learnt > learnt_limit {
                    self.reduce_db();
                    learnt_limit += learnt_limit / 10;
                }
                // Install pending assumptions as the next decisions. A
                // satisfied assumption still opens a (possibly empty)
                // decision level so `decision_level()` keeps indexing the
                // assumption array; a falsified one yields the core.
                let mut next: Option<Lit> = None;
                while (self.decision_level() as usize) < assumptions.len() {
                    let p = assumptions[self.decision_level() as usize];
                    match self.value(p) {
                        LBool::True => self.trail_lim.push(self.trail.len()),
                        LBool::False => {
                            self.analyze_final(p);
                            self.backtrack(0);
                            return SolveResult::Unsat;
                        }
                        LBool::Undef => {
                            next = Some(p);
                            break;
                        }
                    }
                }
                let next = match next {
                    Some(p) => p,
                    None => match self.pick_branch() {
                        None => {
                            let model = self
                                .assign
                                .iter()
                                .map(|&a| a == LBool::True)
                                .collect();
                            self.backtrack(0);
                            return SolveResult::Sat(model);
                        }
                        Some(l) => {
                            self.stats.decisions += 1;
                            l
                        }
                    },
                };
                self.trail_lim.push(self.trail.len());
                let ok = self.enqueue(next, None);
                debug_assert!(ok, "decision variable was unassigned");
            }
        }
    }
}

/// The Luby restart sequence (1, 1, 2, 1, 1, 2, 4, …).
fn luby(i: u64) -> u64 {
    let i = i + 1;
    let mut k = 1u32;
    while (1u64 << k) < i + 1 {
        k += 1;
    }
    if (1u64 << k) == i + 1 {
        return 1 << (k - 1);
    }
    luby(i - (1 << (k - 1)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(solver: &mut Solver, n: usize) -> Vec<Var> {
        (0..n).map(|_| solver.new_var()).collect()
    }

    #[test]
    fn empty_formula_is_sat() {
        assert!(Solver::new().solve().is_sat());
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        s.add_clause([]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn unit_clauses_propagate() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_clause([v[0].positive()]);
        s.add_clause([v[0].negative(), v[1].positive()]);
        s.add_clause([v[1].negative(), v[2].negative()]);
        let m = s.solve().model().unwrap().to_vec();
        assert!(m[0] && m[1] && !m[2]);
    }

    #[test]
    fn contradictory_units_are_unsat() {
        let mut s = Solver::new();
        let v = s.new_var();
        s.add_clause([v.positive()]);
        s.add_clause([v.negative()]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn tautologies_are_dropped() {
        let mut s = Solver::new();
        let v = s.new_var();
        s.add_clause([v.positive(), v.negative()]);
        assert!(s.solve().is_sat());
    }

    #[test]
    fn simple_3sat_instance() {
        let mut s = Solver::new();
        let v = lits(&mut s, 4);
        s.add_clause([v[0].positive(), v[1].positive(), v[2].negative()]);
        s.add_clause([v[0].negative(), v[2].positive(), v[3].positive()]);
        s.add_clause([v[1].negative(), v[2].positive()]);
        s.add_clause([v[3].negative(), v[0].positive()]);
        let m = s.solve().model().unwrap().to_vec();
        // Verify the model satisfies every clause.
        let val = |l: Lit| m[l.var().index()] == l.is_positive();
        assert!(val(v[0].positive()) || val(v[1].positive()) || val(v[2].negative()));
        assert!(val(v[0].negative()) || val(v[2].positive()) || val(v[3].positive()));
        assert!(val(v[1].negative()) || val(v[2].positive()));
        assert!(val(v[3].negative()) || val(v[0].positive()));
    }

    /// Pigeonhole principle: n+1 pigeons cannot fit n holes.
    fn pigeonhole(pigeons: usize, holes: usize) -> SolveResult {
        let mut s = Solver::new();
        let mut at = vec![vec![Var(0); holes]; pigeons];
        for p in at.iter_mut() {
            for h in p.iter_mut() {
                *h = s.new_var();
            }
        }
        for p in 0..pigeons {
            s.add_clause((0..holes).map(|h| at[p][h].positive()));
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in (p1 + 1)..pigeons {
                    s.add_clause([at[p1][h].negative(), at[p2][h].negative()]);
                }
            }
        }
        s.solve()
    }

    #[test]
    fn pigeonhole_unsat() {
        assert_eq!(pigeonhole(5, 4), SolveResult::Unsat);
    }

    #[test]
    fn pigeonhole_sat_when_enough_holes() {
        assert!(pigeonhole(4, 4).is_sat());
    }

    #[test]
    fn order_heap_pops_by_activity_with_index_ties() {
        let mut h = OrderHeap::default();
        let activity = [1.0, 3.0, 3.0, 0.5];
        for i in 0..4u32 {
            h.push_var();
            h.insert(Var(i), &activity);
        }
        // Highest activity first; equal activities break to the lower index.
        assert_eq!(h.pop_max(&activity), Some(Var(1)));
        assert_eq!(h.pop_max(&activity), Some(Var(2)));
        assert_eq!(h.pop_max(&activity), Some(Var(0)));
        assert_eq!(h.pop_max(&activity), Some(Var(3)));
        assert_eq!(h.pop_max(&activity), None);
    }

    #[test]
    fn order_heap_reorders_after_bump_and_reinsert() {
        let mut h = OrderHeap::default();
        let mut activity = [0.0, 0.0, 0.0];
        for i in 0..3u32 {
            h.push_var();
            h.insert(Var(i), &activity);
        }
        activity[2] = 5.0;
        h.bumped(Var(2), &activity);
        assert_eq!(h.pop_max(&activity), Some(Var(2)));
        assert!(!h.contains(Var(2)));
        // Re-insertion (as on backtrack) puts it back on top; double insert
        // is a no-op.
        h.insert(Var(2), &activity);
        h.insert(Var(2), &activity);
        assert_eq!(h.pop_max(&activity), Some(Var(2)));
        assert_eq!(h.pop_max(&activity), Some(Var(0)));
        assert_eq!(h.pop_max(&activity), Some(Var(1)));
        assert_eq!(h.pop_max(&activity), None);
    }

    /// A solver built on one thread keeps working (same verdicts, retained
    /// learnt clauses) after moving to another — the migration pattern the
    /// detection engine's sharded solver-retention map performs.
    #[test]
    fn solver_migrates_between_threads() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_clause([v[0].positive(), v[1].positive()]);
        s.add_clause([v[1].negative(), v[2].positive()]);
        assert!(s.solve_with_assumptions(&[v[0].negative()]).is_sat());
        let (a, b) = (v[1], v[2]);
        let mut s = std::thread::spawn(move || {
            assert!(s.solve_with_assumptions(&[a.negative()]).is_sat());
            s
        })
        .join()
        .unwrap();
        let v = [v[0], a, b];
        s.add_clause([v[2].negative()]);
        assert_eq!(
            s.solve_with_assumptions(&[v[1].positive()]),
            SolveResult::Unsat
        );
        assert!(!s.failed_assumptions().is_empty());
    }

    #[test]
    fn luby_sequence_prefix() {
        let got: Vec<u64> = (0..9).map(luby).collect();
        assert_eq!(got, vec![1, 1, 2, 1, 1, 2, 4, 1, 1]);
    }

    #[test]
    fn stats_are_populated() {
        let s = &mut Solver::new();
        let v = lits(s, 6);
        for i in 0..5 {
            s.add_clause([v[i].positive(), v[i + 1].negative()]);
        }
        s.add_clause([v[0].negative(), v[5].positive()]);
        assert!(s.solve().is_sat());
        assert!(s.stats().propagations > 0 || s.stats().decisions > 0);
    }

    /// Exhaustive check against brute force on all 3-CNF formulas over a
    /// small fixed set of clause shapes.
    #[test]
    fn agrees_with_brute_force_on_small_formulas() {
        let mut seed = 0x12345678u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..300 {
            let nv = 4 + (next() % 5) as usize; // 4..8 vars
            let nc = 5 + (next() % 25) as usize;
            let mut clauses = Vec::new();
            for _ in 0..nc {
                let len = 1 + (next() % 3) as usize;
                let mut cl = Vec::new();
                for _ in 0..len {
                    let v = (next() % nv as u64) as u32;
                    cl.push(Lit::new(Var(v), next() % 2 == 0));
                }
                clauses.push(cl);
            }
            // Brute force.
            let mut brute_sat = false;
            'outer: for m in 0..(1u32 << nv) {
                for cl in &clauses {
                    if !cl
                        .iter()
                        .any(|l| ((m >> l.var().0) & 1 == 1) == l.is_positive())
                    {
                        continue 'outer;
                    }
                }
                brute_sat = true;
                break;
            }
            // CDCL.
            let mut s = Solver::new();
            for _ in 0..nv {
                s.new_var();
            }
            for cl in &clauses {
                s.add_clause(cl.iter().copied());
            }
            let res = s.solve();
            assert_eq!(res.is_sat(), brute_sat, "disagreement on {clauses:?}");
            if let SolveResult::Sat(m) = res {
                for cl in &clauses {
                    assert!(
                        cl.iter().any(|l| m[l.var().index()] == l.is_positive()),
                        "model does not satisfy {cl:?}"
                    );
                }
            }
        }
    }
}
