//! DIMACS CNF serialization, for debugging encodings against external
//! solvers, plus the textual DRAT dump of a solver's proof log — with the
//! matching [`to_dimacs`] CNF file, [`to_drat`] output can be fed straight
//! to external checkers such as drat-trim.

use std::fmt::Write as _;

use crate::lit::{Lit, Var};
use crate::proof::ProofEvent;
use crate::solver::Solver;

/// Renders a clause list in DIMACS CNF format.
pub fn to_dimacs(num_vars: usize, clauses: &[Vec<Lit>]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "p cnf {} {}", num_vars, clauses.len());
    for c in clauses {
        for &l in c {
            let n = l.var().0 as i64 + 1;
            let _ = write!(out, "{} ", if l.is_positive() { n } else { -n });
        }
        out.push_str("0\n");
    }
    out
}

/// Renders a proof log in textual DRAT format: one line per deduced
/// clause (`lits... 0`) or deletion (`d lits... 0`). [`ProofEvent::Input`]
/// records are skipped — in the DRAT convention the problem CNF travels in
/// its own DIMACS file ([`to_dimacs`]), the proof file holds only the
/// derivation. A root-level UNSAT proof ends with the empty clause (`0`).
///
/// Assumption-scoped queries have no portable DRAT rendering; to
/// cross-check one externally, append the failed-assumption core to the
/// CNF file as unit clauses first.
pub fn to_drat(events: &[ProofEvent]) -> String {
    let mut out = String::new();
    for e in events {
        let lits = match e {
            ProofEvent::Input(_) => continue,
            ProofEvent::Add(l) => l,
            ProofEvent::Delete(l) => {
                out.push_str("d ");
                l
            }
        };
        for &l in lits {
            let n = l.var().0 as i64 + 1;
            let _ = write!(out, "{} ", if l.is_positive() { n } else { -n });
        }
        out.push_str("0\n");
    }
    out
}

/// Parses textual DRAT back into [`ProofEvent::Add`]/[`ProofEvent::Delete`]
/// events — the inverse of [`to_drat`], pinning the format round-trip.
///
/// # Errors
///
/// Returns a description of the first malformed line.
pub fn parse_drat(text: &str) -> Result<Vec<ProofEvent>, String> {
    let mut events = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        let (delete, rest) = match line.strip_prefix("d ") {
            Some(rest) => (true, rest),
            None => (false, line),
        };
        let mut lits: Vec<Lit> = Vec::new();
        let mut closed = false;
        for tok in rest.split_whitespace() {
            if closed {
                return Err(format!("literals after terminating 0 in `{line}`"));
            }
            let n: i64 = tok.parse().map_err(|e| format!("bad literal `{tok}`: {e}"))?;
            if n == 0 {
                closed = true;
            } else {
                lits.push(Lit::new(Var((n.unsigned_abs() - 1) as u32), n > 0));
            }
        }
        if !closed {
            return Err(format!("unterminated DRAT line `{line}`"));
        }
        events.push(if delete {
            ProofEvent::Delete(lits)
        } else {
            ProofEvent::Add(lits)
        });
    }
    Ok(events)
}

/// Parses DIMACS CNF text into a ready-to-solve [`Solver`].
///
/// # Errors
///
/// Returns a description of the first malformed line.
pub fn parse_dimacs(text: &str) -> Result<Solver, String> {
    parse_dimacs_with_proofs(text, false)
}

/// [`parse_dimacs`], optionally with proof logging enabled *before* the
/// clauses are added — the entry point of the `solve_dimacs` example
/// harness's `--proof-out` flag.
///
/// # Errors
///
/// Returns a description of the first malformed line.
pub fn parse_dimacs_with_proofs(text: &str, proofs: bool) -> Result<Solver, String> {
    let mut solver = Solver::new();
    solver.set_proof_logging(proofs);
    let mut declared_vars: Option<usize> = None;
    let mut clause: Vec<Lit> = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("p cnf") {
            let mut it = rest.split_whitespace();
            let nv: usize = it
                .next()
                .ok_or("missing var count")?
                .parse()
                .map_err(|e| format!("bad var count: {e}"))?;
            declared_vars = Some(nv);
            for _ in 0..nv {
                solver.new_var();
            }
            continue;
        }
        for tok in line.split_whitespace() {
            let n: i64 = tok.parse().map_err(|e| format!("bad literal `{tok}`: {e}"))?;
            if n == 0 {
                solver.add_clause(clause.drain(..));
            } else {
                let v = (n.unsigned_abs() - 1) as u32;
                if declared_vars.is_none_or(|nv| v as usize >= nv) {
                    return Err(format!("literal {n} out of declared range"));
                }
                clause.push(Lit::new(Var(v), n > 0));
            }
        }
    }
    if !clause.is_empty() {
        solver.add_clause(clause);
    }
    Ok(solver)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SolveResult;

    #[test]
    fn round_trip_simple_formula() {
        let clauses = vec![
            vec![Lit::new(Var(0), true), Lit::new(Var(1), false)],
            vec![Lit::new(Var(1), true)],
        ];
        let text = to_dimacs(2, &clauses);
        assert!(text.starts_with("p cnf 2 2"));
        let mut s = parse_dimacs(&text).unwrap();
        let m = s.solve().model().unwrap().to_vec();
        assert!(m[0] && m[1]);
    }

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = "c a comment\n\np cnf 1 1\n1 0\n";
        let mut s = parse_dimacs(text).unwrap();
        assert!(s.solve().is_sat());
    }

    #[test]
    fn detects_unsat_from_text() {
        let text = "p cnf 1 2\n1 0\n-1 0\n";
        let mut s = parse_dimacs(text).unwrap();
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn rejects_out_of_range_literal() {
        assert!(parse_dimacs("p cnf 1 1\n2 0\n").is_err());
    }

    #[test]
    fn drat_round_trips_adds_and_deletes() {
        let events = vec![
            ProofEvent::Add(vec![Lit::new(Var(0), true), Lit::new(Var(2), false)]),
            ProofEvent::Delete(vec![Lit::new(Var(1), false), Lit::new(Var(0), true)]),
            ProofEvent::Add(vec![]),
        ];
        let text = to_drat(&events);
        assert_eq!(text, "1 -3 0\nd -2 1 0\n0\n");
        assert_eq!(parse_drat(&text).unwrap(), events);
    }

    #[test]
    fn drat_skips_input_events() {
        let events = vec![
            ProofEvent::Input(vec![Lit::new(Var(0), true)]),
            ProofEvent::Add(vec![Lit::new(Var(0), false)]),
        ];
        assert_eq!(to_drat(&events), "-1 0\n");
    }

    #[test]
    fn drat_rejects_malformed_lines() {
        assert!(parse_drat("1 2").is_err(), "unterminated");
        assert!(parse_drat("1 0 2 0").is_err(), "trailing literals");
        assert!(parse_drat("x 0").is_err(), "non-numeric");
    }

    #[test]
    fn solver_log_dumps_checkable_drat() {
        // Pigeonhole-ish root UNSAT: the proof ends in the empty clause
        // and every line parses back.
        let mut s = parse_dimacs_with_proofs("p cnf 2 4\n1 2 0\n1 -2 0\n-1 2 0\n-1 -2 0\n", true)
            .unwrap();
        assert_eq!(s.solve(), SolveResult::Unsat);
        let text = to_drat(s.proof_events());
        let parsed = parse_drat(&text).unwrap();
        assert!(!parsed.is_empty());
        assert!(parsed
            .iter()
            .all(|e| !matches!(e, ProofEvent::Input(_))));
    }
}
