//! DIMACS CNF serialization, for debugging encodings against external solvers.

use std::fmt::Write as _;

use crate::lit::{Lit, Var};
use crate::solver::Solver;

/// Renders a clause list in DIMACS CNF format.
pub fn to_dimacs(num_vars: usize, clauses: &[Vec<Lit>]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "p cnf {} {}", num_vars, clauses.len());
    for c in clauses {
        for &l in c {
            let n = l.var().0 as i64 + 1;
            let _ = write!(out, "{} ", if l.is_positive() { n } else { -n });
        }
        out.push_str("0\n");
    }
    out
}

/// Parses DIMACS CNF text into a ready-to-solve [`Solver`].
///
/// # Errors
///
/// Returns a description of the first malformed line.
pub fn parse_dimacs(text: &str) -> Result<Solver, String> {
    let mut solver = Solver::new();
    let mut declared_vars: Option<usize> = None;
    let mut clause: Vec<Lit> = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("p cnf") {
            let mut it = rest.split_whitespace();
            let nv: usize = it
                .next()
                .ok_or("missing var count")?
                .parse()
                .map_err(|e| format!("bad var count: {e}"))?;
            declared_vars = Some(nv);
            for _ in 0..nv {
                solver.new_var();
            }
            continue;
        }
        for tok in line.split_whitespace() {
            let n: i64 = tok.parse().map_err(|e| format!("bad literal `{tok}`: {e}"))?;
            if n == 0 {
                solver.add_clause(clause.drain(..));
            } else {
                let v = (n.unsigned_abs() - 1) as u32;
                if declared_vars.is_none_or(|nv| v as usize >= nv) {
                    return Err(format!("literal {n} out of declared range"));
                }
                clause.push(Lit::new(Var(v), n > 0));
            }
        }
    }
    if !clause.is_empty() {
        solver.add_clause(clause);
    }
    Ok(solver)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SolveResult;

    #[test]
    fn round_trip_simple_formula() {
        let clauses = vec![
            vec![Lit::new(Var(0), true), Lit::new(Var(1), false)],
            vec![Lit::new(Var(1), true)],
        ];
        let text = to_dimacs(2, &clauses);
        assert!(text.starts_with("p cnf 2 2"));
        let mut s = parse_dimacs(&text).unwrap();
        let m = s.solve().model().unwrap().to_vec();
        assert!(m[0] && m[1]);
    }

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = "c a comment\n\np cnf 1 1\n1 0\n";
        let mut s = parse_dimacs(text).unwrap();
        assert!(s.solve().is_sat());
    }

    #[test]
    fn detects_unsat_from_text() {
        let text = "p cnf 1 2\n1 0\n-1 0\n";
        let mut s = parse_dimacs(text).unwrap();
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn rejects_out_of_range_literal() {
        assert!(parse_dimacs("p cnf 1 1\n2 0\n").is_err());
    }
}
