//! A CDCL SAT solver in the MiniSat lineage.
//!
//! Features: two-watched-literal propagation over blocker-literal watcher
//! lists, first-UIP conflict analysis with clause learning, VSIDS branching
//! with phase saving, Luby restarts, activity-based deletion of learnt
//! clauses, root-level simplification, and **incremental solving under
//! assumptions**: [`Solver::solve_with_assumptions`] decides the formula
//! conjoined with a set of assumption literals, retains learnt clauses
//! across calls, and on failure exposes a failed-assumption core via
//! [`Solver::failed_assumptions`]. Clauses may be added between calls.
//! The solver is deliberately deterministic: identical inputs yield
//! identical models.
//!
//! Clause storage is a flat arena: every clause lives contiguously in one
//! `Vec<u32>` as `[header | len | lits... | activity?]`, and a `ClauseRef`
//! is an offset into that buffer. Propagation therefore walks linear
//! memory instead of chasing one heap `Vec<Lit>` per clause, and most
//! watch visits are resolved by the watcher's cached *blocker* literal
//! without touching the clause at all. Deleting learnt clauses marks arena
//! records as garbage; when enough of the buffer is dead the arena is
//! compacted with a relocation pass (watches and reasons are remapped
//! through forwarding offsets).

use crate::lit::{LBool, Lit, Var};
use crate::proof::ProofEvent;

/// Outcome of [`Solver::solve`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveResult {
    /// A satisfying assignment was found (one value per variable).
    Sat(Vec<bool>),
    /// The formula is unsatisfiable.
    Unsat,
}

impl SolveResult {
    /// True if satisfiable.
    pub fn is_sat(&self) -> bool {
        matches!(self, SolveResult::Sat(_))
    }

    /// The model, if satisfiable.
    pub fn model(&self) -> Option<&[bool]> {
        match self {
            SolveResult::Sat(m) => Some(m),
            SolveResult::Unsat => None,
        }
    }
}

/// Offset of a clause record in the arena.
type ClauseRef = u32;

/// Header flag: the clause is learnt (and carries an activity word).
const LEARNT_BIT: u32 = 1;
/// Header flag: the record is garbage (deleted, awaiting compaction).
const MARK_BIT: u32 = 2;
/// Header flag: the record was relocated; the length word holds the
/// forwarding offset into the new buffer (compaction-internal).
const RELOC_BIT: u32 = 4;

/// The flat clause store: `[header | len | lits... | activity?]` records
/// packed back to back in one `u32` buffer. Literals are stored as their
/// [`Lit::index`] encoding, which is already a dense `u32`; learnt
/// clauses carry one trailing word holding their activity as `f32` bits.
#[derive(Debug, Default)]
struct Arena {
    data: Vec<u32>,
    /// Words occupied by marked (deleted) records.
    wasted: usize,
}

impl Arena {
    fn alloc(&mut self, lits: &[Lit], learnt: bool) -> ClauseRef {
        let cref = self.data.len() as ClauseRef;
        self.data.reserve(2 + lits.len() + usize::from(learnt));
        self.data.push(if learnt { LEARNT_BIT } else { 0 });
        self.data.push(lits.len() as u32);
        self.data.extend(lits.iter().map(|l| l.index() as u32));
        if learnt {
            self.data.push(0f32.to_bits());
        }
        cref
    }

    #[inline]
    fn len(&self, cref: ClauseRef) -> usize {
        self.data[cref as usize + 1] as usize
    }

    #[inline]
    fn lit(&self, cref: ClauseRef, i: usize) -> Lit {
        Lit::from_index(self.data[cref as usize + 2 + i] as usize)
    }

    #[inline]
    fn swap_lits(&mut self, cref: ClauseRef, i: usize, j: usize) {
        let base = cref as usize + 2;
        self.data.swap(base + i, base + j);
    }

    #[inline]
    fn is_learnt(&self, cref: ClauseRef) -> bool {
        self.data[cref as usize] & LEARNT_BIT != 0
    }

    fn activity(&self, cref: ClauseRef) -> f32 {
        debug_assert!(self.is_learnt(cref));
        let len = self.len(cref);
        f32::from_bits(self.data[cref as usize + 2 + len])
    }

    fn set_activity(&mut self, cref: ClauseRef, act: f32) {
        debug_assert!(self.is_learnt(cref));
        let len = self.len(cref);
        self.data[cref as usize + 2 + len] = act.to_bits();
    }

    /// Words occupied by the record at `cref`.
    fn record_words(&self, cref: ClauseRef) -> usize {
        2 + self.len(cref) + usize::from(self.is_learnt(cref))
    }

    /// Marks the record garbage; the space is reclaimed by compaction.
    fn free(&mut self, cref: ClauseRef) {
        debug_assert_eq!(self.data[cref as usize] & (MARK_BIT | RELOC_BIT), 0);
        self.wasted += self.record_words(cref);
        self.data[cref as usize] |= MARK_BIT;
    }

    /// Fraction of the buffer occupied by garbage records.
    fn wasted_ratio(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.wasted as f64 / self.data.len() as f64
        }
    }

    /// Copies the record into `to` and leaves a forwarding offset behind,
    /// so later [`Arena::forward`] calls on the old ref resolve to the new
    /// one. Idempotent: an already-relocated record is not copied twice.
    fn relocate(&mut self, cref: ClauseRef, to: &mut Vec<u32>) {
        let off = cref as usize;
        if self.data[off] & RELOC_BIT != 0 {
            return;
        }
        debug_assert_eq!(self.data[off] & MARK_BIT, 0, "garbage is never relocated");
        let words = self.record_words(cref);
        let new_ref = to.len() as u32;
        to.extend_from_slice(&self.data[off..off + words]);
        self.data[off] = RELOC_BIT;
        self.data[off + 1] = new_ref;
    }

    /// The post-relocation offset of a live record.
    fn forward(&self, cref: ClauseRef) -> ClauseRef {
        let off = cref as usize;
        debug_assert!(self.data[off] & RELOC_BIT != 0, "record was relocated");
        self.data[off + 1]
    }
}

/// A clause watcher: the clause plus a cached *blocker* literal (some
/// other literal of the clause). If the blocker is already true the
/// clause is satisfied and the watch visit never touches clause memory —
/// the common case in the dense detection encodings.
#[derive(Debug, Clone, Copy)]
struct Watcher {
    cref: ClauseRef,
    blocker: Lit,
}

/// A binary max-heap over variables ordered by VSIDS activity, with a
/// position index for O(log n) re-heapification when an activity is bumped.
/// Replaces the former O(vars) scan per decision in `pick_branch` — the
/// difference matters once pair solvers are retained across a whole repair
/// run and answer thousands of queries each.
///
/// Removal is lazy: variables stay in the heap when assigned and are simply
/// skipped (and dropped) at [`OrderHeap::pop_max`] time; backtracking
/// re-inserts the unassigned ones. Ties in activity break towards the lower
/// variable index, keeping decisions fully deterministic.
#[derive(Debug, Default)]
struct OrderHeap {
    heap: Vec<Var>,
    /// `pos[v]` is the index of `v` in `heap`, or `ABSENT`.
    pos: Vec<usize>,
}

impl OrderHeap {
    const ABSENT: usize = usize::MAX;

    /// "a ranks before b": strictly higher activity, ties by lower index.
    #[inline]
    fn before(activity: &[f64], a: Var, b: Var) -> bool {
        let (aa, ab) = (activity[a.index()], activity[b.index()]);
        aa > ab || (aa == ab && a.0 < b.0)
    }

    /// Registers a new variable slot (initially absent from the heap).
    fn push_var(&mut self) {
        self.pos.push(Self::ABSENT);
    }

    fn contains(&self, v: Var) -> bool {
        self.pos[v.index()] != Self::ABSENT
    }

    fn insert(&mut self, v: Var, activity: &[f64]) {
        if self.contains(v) {
            return;
        }
        self.pos[v.index()] = self.heap.len();
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, activity);
    }

    /// Restores the heap property after `v`'s activity increased.
    fn bumped(&mut self, v: Var, activity: &[f64]) {
        let i = self.pos[v.index()];
        if i != Self::ABSENT {
            self.sift_up(i, activity);
        }
    }

    /// Pops the highest-ranked variable, or `None` when empty.
    fn pop_max(&mut self, activity: &[f64]) -> Option<Var> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("non-empty");
        self.pos[top.index()] = Self::ABSENT;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last.index()] = 0;
            self.sift_down(0, activity);
        }
        Some(top)
    }

    fn sift_up(&mut self, mut i: usize, activity: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if !Self::before(activity, self.heap[i], self.heap[parent]) {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, activity: &[f64]) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut best = i;
            if l < self.heap.len() && Self::before(activity, self.heap[l], self.heap[best]) {
                best = l;
            }
            if r < self.heap.len() && Self::before(activity, self.heap[r], self.heap[best]) {
                best = r;
            }
            if best == i {
                return;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.pos[self.heap[i].index()] = i;
        self.pos[self.heap[j].index()] = j;
    }
}

/// Statistics accumulated during solving.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SolverStats {
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of unit propagations performed.
    pub propagations: u64,
    /// Number of conflicts analysed.
    pub conflicts: u64,
    /// Number of restarts executed.
    pub restarts: u64,
    /// Number of learnt clauses deleted.
    pub deleted: u64,
    /// Number of arena compactions performed.
    pub compactions: u64,
}

/// A CDCL SAT solver.
///
/// The solver owns all of its state (no shared-memory interior), so it is
/// `Send` — a compile-time guarantee pinned below that the detection
/// engine relies on to migrate retained pair solvers between its workers.
/// It is *not* concurrency-safe (`&mut` access only); parallelism is the
/// callers' business, one solver per worker at a time.
///
/// # Examples
///
/// ```
/// use atropos_sat::{Solver, Var};
///
/// let mut s = Solver::new();
/// let a = s.new_var();
/// let b = s.new_var();
/// s.add_clause([a.positive(), b.positive()]);
/// s.add_clause([a.negative()]);
/// let model = s.solve().model().unwrap().to_vec();
/// assert!(!model[a.index()] && model[b.index()]);
/// ```
#[derive(Debug)]
pub struct Solver {
    arena: Arena,
    /// Live original clauses, in insertion order.
    clauses: Vec<ClauseRef>,
    /// Live learnt clauses, in learning order.
    learnts: Vec<ClauseRef>,
    watches: Vec<Vec<Watcher>>, // indexed by Lit::index
    assign: Vec<LBool>,
    level: Vec<u32>,
    reason: Vec<Option<ClauseRef>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    prop_head: usize,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f32,
    phase: Vec<bool>,
    order: OrderHeap, // VSIDS order heap (lazy removal of assigned vars)
    unsat: bool,
    stats: SolverStats,
    seen: Vec<bool>,
    failed: Vec<Lit>,
    /// Root-trail length the last `simplify` ran at (skip when unchanged).
    simplified_at: usize,
    /// Scratch for conflict analysis (avoids a per-conflict allocation).
    analyze_scratch: Vec<Lit>,
    /// DRAT-style event log; `None` (the default) makes logging a no-op.
    proof: Option<Vec<ProofEvent>>,
}

// A retained solver must be able to migrate between detection workers; any
// non-Send field added to the solver stack should fail compilation here.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Solver>();
    assert_send::<SolveResult>();
};

const VAR_DECAY: f64 = 0.95;
const CLA_DECAY: f32 = 0.999;
const RESCALE: f64 = 1e100;
/// Clause activities are `f32` (they live in one arena word), so they
/// rescale at a much lower threshold than the `f64` variable activities.
const CLA_RESCALE: f32 = 1e20;
/// Compact the arena when at least this fraction of it is garbage.
const COMPACT_WASTE: f64 = 0.25;

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Solver {
        Solver {
            arena: Arena::default(),
            clauses: Vec::new(),
            learnts: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            prop_head: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            phase: Vec::new(),
            order: OrderHeap::default(),
            unsat: false,
            stats: SolverStats::default(),
            seen: Vec::new(),
            failed: Vec::new(),
            simplified_at: 0,
            analyze_scratch: Vec::new(),
            proof: None,
        }
    }

    /// Turns DRAT-style proof logging on or off. Logging costs nothing
    /// when off (the default). Enabling must happen before the first
    /// clause is added: the event log reconstructs the problem CNF from
    /// its [`ProofEvent::Input`] records, so clauses added while logging
    /// was off would leave unverifiable holes.
    ///
    /// # Panics
    ///
    /// Panics (debug) when enabled on a solver that already holds clauses
    /// or root facts.
    pub fn set_proof_logging(&mut self, on: bool) {
        if on {
            debug_assert!(
                self.clauses.is_empty() && self.learnts.is_empty() && self.trail.is_empty(),
                "proof logging must be enabled before the first clause"
            );
            self.proof.get_or_insert_with(Vec::new);
        } else {
            self.proof = None;
        }
    }

    /// Whether proof logging is on.
    pub fn proof_logging(&self) -> bool {
        self.proof.is_some()
    }

    /// The DRAT-style events logged so far (empty when logging is off).
    pub fn proof_events(&self) -> &[ProofEvent] {
        self.proof.as_deref().unwrap_or(&[])
    }

    #[inline]
    fn log_proof(&mut self, event: impl FnOnce() -> ProofEvent) {
        if let Some(log) = self.proof.as_mut() {
            log.push(event());
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assign.len() as u32);
        self.assign.push(LBool::Undef);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.phase.push(false);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.push_var();
        self.order.insert(v, &self.activity);
        v
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Solver statistics so far.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Number of *live* clauses currently stored (original plus retained
    /// learnt). Clauses that [`Solver::simplify`] removed because the root
    /// level already satisfies them are not counted — they are logically
    /// gone, and reporting them would overstate the working set.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len() + self.learnts.len()
    }

    /// After [`Solver::solve_with_assumptions`] returns
    /// [`SolveResult::Unsat`], the subset of the assumption literals whose
    /// conjunction already contradicts the formula (the *failed-assumption
    /// core*). Empty when the formula is unsatisfiable on its own.
    pub fn failed_assumptions(&self) -> &[Lit] {
        &self.failed
    }

    #[inline]
    fn value(&self, l: Lit) -> LBool {
        self.assign[l.var().index()].under(l.is_positive())
    }

    /// Adds a clause (a disjunction of literals).
    ///
    /// Duplicated literals are removed; tautologies are silently dropped; an
    /// empty clause makes the formula trivially unsatisfiable. Clauses may
    /// be added before the first solve and between solves (the solver
    /// returns to the root decision level after every call); previously
    /// learnt clauses stay valid because learning is deduction.
    ///
    /// # Panics
    ///
    /// Panics if a literal references an unallocated variable.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) {
        debug_assert!(
            self.trail_lim.is_empty(),
            "the solver is at the root level between solves"
        );
        let mut lits: Vec<Lit> = lits.into_iter().collect();
        for l in &lits {
            assert!(l.var().index() < self.num_vars(), "unallocated variable");
        }
        lits.sort();
        lits.dedup();
        // Tautology?
        for w in lits.windows(2) {
            if w[0].var() == w[1].var() {
                return;
            }
        }
        // Log the clause as given (sorted, deduplicated) *before* the
        // root-level simplifications below: the proof log's input events
        // must reconstruct the problem formula, not its current residue.
        self.log_proof(|| ProofEvent::Input(lits.clone()));
        // Remove root-level falsified literals; detect satisfied clauses.
        lits.retain(|&l| self.value(l) != LBool::False);
        if lits.iter().any(|&l| self.value(l) == LBool::True) {
            return;
        }
        match lits.len() {
            0 => self.unsat = true,
            1 => {
                if !self.enqueue(lits[0], None) || self.propagate().is_some() {
                    self.unsat = true;
                }
            }
            _ => {
                self.attach(&lits, false);
            }
        }
    }

    /// Imports clauses a fingerprint-identical solver learnt over the same
    /// variable numbering (see [`Solver::retained_learnts`]). Each clause
    /// is attached as a *learnt* clause — it is deduced knowledge, so it
    /// neither counts against the original-clause budget that paces
    /// learnt-DB reduction nor inflates [`Solver::num_clauses`]'s original
    /// half. Returns how many clauses were installed (root-satisfied
    /// imports are dropped, unit imports become root facts).
    ///
    /// # Panics
    ///
    /// Panics if a literal references an unallocated variable.
    pub fn import_learnts<'a, I>(&mut self, clauses: I) -> usize
    where
        I: IntoIterator<Item = &'a [Lit]>,
    {
        debug_assert!(self.trail_lim.is_empty(), "import happens at the root");
        let mut installed = 0usize;
        for clause in clauses {
            if self.unsat {
                break;
            }
            let mut lits: Vec<Lit> = clause.to_vec();
            for l in &lits {
                assert!(l.var().index() < self.num_vars(), "unallocated variable");
            }
            lits.retain(|&l| self.value(l) != LBool::False);
            if lits.iter().any(|&l| self.value(l) == LBool::True) {
                continue;
            }
            // With proof logging on, every imported lemma must be
            // re-derivable by the checker at this point in the event log.
            // Pool lemmas were learnt against a *different* solver's event
            // order (intermediate lemmas may have been deleted there), so
            // each one is re-verified by reverse unit propagation against
            // this solver's live database; seeds that fail the gate are
            // skipped — always sound, since a seed is only ever a hint.
            if self.proof.is_some() {
                if !self.seed_is_rup(&lits) {
                    continue;
                }
                self.log_proof(|| ProofEvent::Add(lits.clone()));
            }
            match lits.len() {
                0 => self.unsat = true,
                1 => {
                    installed += 1;
                    if !self.enqueue(lits[0], None) || self.propagate().is_some() {
                        self.unsat = true;
                    }
                }
                _ => {
                    installed += 1;
                    self.attach(&lits, true);
                }
            }
        }
        installed
    }

    /// Reverse-unit-propagation check of one candidate clause against the
    /// live database: open a scratch decision level, assert the negation
    /// of every literal, and propagate. A conflict (or an unenqueueable
    /// negation — the clause is satisfied by forced literals) proves the
    /// clause; the scratch level is always rolled back.
    fn seed_is_rup(&mut self, lits: &[Lit]) -> bool {
        debug_assert!(self.trail_lim.is_empty(), "RUP gate runs at the root");
        self.trail_lim.push(self.trail.len());
        let mut proved = false;
        for &l in lits {
            if !self.enqueue(!l, None) {
                proved = true;
                break;
            }
        }
        if !proved {
            proved = self.propagate().is_some();
        }
        self.backtrack(0);
        proved
    }

    /// Exports the deduced knowledge another solver with the *same* clause
    /// set over the first `below_vars` variables may soundly import: root
    /// facts and live learnt clauses mentioning only variables below
    /// `below_vars`. Guarded extension clauses (activation literals and
    /// their Tseitin auxiliaries all live at `>= below_vars`) never leak
    /// into the export: any base-projected consequence of the extended
    /// formula is already a consequence of the base formula alone, because
    /// every base model extends to the full variable set (set all guards
    /// false, evaluate the auxiliary definitions bottom-up).
    pub fn retained_learnts(&self, below_vars: usize) -> Vec<Vec<Lit>> {
        debug_assert!(self.trail_lim.is_empty(), "export happens at the root");
        let mut out = Vec::new();
        for &l in &self.trail {
            if l.var().index() < below_vars {
                out.push(vec![l]);
            }
        }
        for &cref in &self.learnts {
            let len = self.arena.len(cref);
            let lits: Vec<Lit> = (0..len).map(|i| self.arena.lit(cref, i)).collect();
            if lits.iter().all(|l| l.var().index() < below_vars) {
                out.push(lits);
            }
        }
        out
    }

    /// Exports the stored problem: root facts as unit clauses, then every
    /// original (non-learnt) clause as currently simplified. Replaying the
    /// export into a fresh solver over the same variable allocation yields
    /// an equisatisfiable formula; the `solver_stats` microbench uses it to
    /// run identical clause streams through this solver and the baseline
    /// [`crate::reference::Solver`] so the two layouts are compared on
    /// equal work.
    pub fn problem_clauses(&self) -> Vec<Vec<Lit>> {
        debug_assert!(self.trail_lim.is_empty(), "export happens at the root");
        let mut out = Vec::new();
        for &l in &self.trail {
            out.push(vec![l]);
        }
        for &cref in &self.clauses {
            let len = self.arena.len(cref);
            out.push((0..len).map(|i| self.arena.lit(cref, i)).collect());
        }
        out
    }

    fn attach(&mut self, lits: &[Lit], learnt: bool) -> ClauseRef {
        debug_assert!(lits.len() >= 2);
        let cref = self.arena.alloc(lits, learnt);
        self.watches[(!lits[0]).index()].push(Watcher {
            cref,
            blocker: lits[1],
        });
        self.watches[(!lits[1]).index()].push(Watcher {
            cref,
            blocker: lits[0],
        });
        if learnt {
            self.learnts.push(cref);
        } else {
            self.clauses.push(cref);
        }
        cref
    }

    /// Detaches the clause from its two watch lists and frees its record.
    fn remove_clause(&mut self, cref: ClauseRef) {
        if self.proof.is_some() {
            let len = self.arena.len(cref);
            let lits: Vec<Lit> = (0..len).map(|i| self.arena.lit(cref, i)).collect();
            self.log_proof(|| ProofEvent::Delete(lits));
        }
        let (l0, l1) = (self.arena.lit(cref, 0), self.arena.lit(cref, 1));
        self.watches[(!l0).index()].retain(|w| w.cref != cref);
        self.watches[(!l1).index()].retain(|w| w.cref != cref);
        self.arena.free(cref);
    }

    fn enqueue(&mut self, l: Lit, reason: Option<ClauseRef>) -> bool {
        match self.value(l) {
            LBool::True => true,
            LBool::False => false,
            LBool::Undef => {
                let v = l.var().index();
                self.assign[v] = LBool::from_bool(l.is_positive());
                self.level[v] = self.decision_level();
                self.reason[v] = reason;
                self.phase[v] = l.is_positive();
                self.trail.push(l);
                true
            }
        }
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Propagates all enqueued facts; returns a conflicting clause on conflict.
    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.prop_head < self.trail.len() {
            let p = self.trail[self.prop_head];
            self.prop_head += 1;
            self.stats.propagations += 1;
            let false_lit = !p;
            let mut ws = std::mem::take(&mut self.watches[p.index()]);
            let mut i = 0;
            let mut j = 0;
            'watchers: while i < ws.len() {
                let w = ws[i];
                // Blocker fast path: the clause is satisfied; keep the
                // watcher without reading clause memory at all.
                if self.value(w.blocker) == LBool::True {
                    ws[j] = w;
                    j += 1;
                    i += 1;
                    continue;
                }
                let cref = w.cref;
                // The false literal must be at position 1.
                if self.arena.lit(cref, 0) == false_lit {
                    self.arena.swap_lits(cref, 0, 1);
                }
                debug_assert_eq!(self.arena.lit(cref, 1), false_lit);
                let first = self.arena.lit(cref, 0);
                let keep = Watcher {
                    cref,
                    blocker: first,
                };
                if first != w.blocker && self.value(first) == LBool::True {
                    ws[j] = keep;
                    j += 1;
                    i += 1;
                    continue;
                }
                // Find a new literal to watch.
                let len = self.arena.len(cref);
                for k in 2..len {
                    let lk = self.arena.lit(cref, k);
                    if self.value(lk) != LBool::False {
                        self.arena.swap_lits(cref, 1, k);
                        self.watches[(!lk).index()].push(keep);
                        i += 1;
                        continue 'watchers;
                    }
                }
                // Clause is unit or conflicting.
                ws[j] = keep;
                j += 1;
                if !self.enqueue(first, Some(cref)) {
                    // Conflict: preserve the unvisited tail of the list.
                    i += 1;
                    while i < ws.len() {
                        ws[j] = ws[i];
                        j += 1;
                        i += 1;
                    }
                    ws.truncate(j);
                    self.watches[p.index()] = ws;
                    self.prop_head = self.trail.len();
                    return Some(cref);
                }
                i += 1;
            }
            ws.truncate(j);
            self.watches[p.index()] = ws;
        }
        None
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > RESCALE {
            // Uniform rescaling preserves the relative order of every pair
            // of activities, so the heap invariant survives untouched.
            for a in &mut self.activity {
                *a /= RESCALE;
            }
            self.var_inc /= RESCALE;
        }
        self.order.bumped(v, &self.activity);
    }

    fn bump_clause(&mut self, cref: ClauseRef) {
        if !self.arena.is_learnt(cref) {
            return;
        }
        let act = self.arena.activity(cref) + self.cla_inc;
        self.arena.set_activity(cref, act);
        if act > CLA_RESCALE {
            for idx in 0..self.learnts.len() {
                let c = self.learnts[idx];
                let a = self.arena.activity(c);
                self.arena.set_activity(c, a / CLA_RESCALE);
            }
            self.cla_inc /= CLA_RESCALE;
        }
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backtrack level.
    fn analyze(&mut self, conflict: ClauseRef) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = std::mem::take(&mut self.analyze_scratch);
        learnt.clear();
        learnt.push(Lit::new(Var(0), true)); // placeholder for UIP
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut cref = conflict;
        let mut idx = self.trail.len();
        let current = self.decision_level();

        loop {
            self.bump_clause(cref);
            let len = self.arena.len(cref);
            let skip_first = usize::from(p.is_some());
            for k in skip_first..len {
                let q = self.arena.lit(cref, k);
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    self.bump_var(v);
                    if self.level[v.index()] == current {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Find next literal on the trail to resolve on.
            loop {
                idx -= 1;
                if self.seen[self.trail[idx].var().index()] {
                    break;
                }
            }
            let lit = self.trail[idx];
            self.seen[lit.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                p = Some(lit);
                break;
            }
            cref = self.reason[lit.var().index()].expect("non-decision must have a reason");
            p = Some(lit);
        }
        learnt[0] = !p.expect("UIP exists");

        // Compute backtrack level (second-highest level in the clause).
        let bt = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()]
        };
        for &l in &learnt {
            self.seen[l.var().index()] = false;
        }
        (learnt, bt)
    }

    fn backtrack(&mut self, level: u32) {
        while self.decision_level() > level {
            let lim = self.trail_lim.pop().expect("level > 0");
            for &l in &self.trail[lim..] {
                let v = l.var();
                self.assign[v.index()] = LBool::Undef;
                self.reason[v.index()] = None;
                self.order.insert(v, &self.activity);
            }
            self.trail.truncate(lim);
        }
        self.prop_head = self.trail.len();
    }

    fn pick_branch(&mut self) -> Option<Lit> {
        while let Some(v) = self.order.pop_max(&self.activity) {
            if self.assign[v.index()] == LBool::Undef {
                return Some(Lit::new(v, self.phase[v.index()]));
            }
        }
        None
    }

    /// True if the clause is the reason of its first literal's assignment
    /// (such a clause must survive learnt-DB reduction).
    fn is_locked(&self, cref: ClauseRef) -> bool {
        let l0 = self.arena.lit(cref, 0);
        self.assign[l0.var().index()] != LBool::Undef && self.reason[l0.var().index()] == Some(cref)
    }

    fn reduce_db(&mut self) {
        // Delete the lower-activity half of removable learnt clauses by
        // median split; surviving refs stay valid (deleted records are
        // marked garbage and reclaimed once enough of the arena is dead).
        let mut acts: Vec<f32> = self
            .learnts
            .iter()
            .filter(|&&c| self.arena.len(c) > 2)
            .map(|&c| self.arena.activity(c))
            .collect();
        if acts.len() < 2 {
            return;
        }
        acts.sort_by(|a, b| a.partial_cmp(b).expect("activities are finite"));
        let median = acts[acts.len() / 2];

        let old = std::mem::take(&mut self.learnts);
        for cref in old {
            let keep = self.arena.len(cref) <= 2
                || self.arena.activity(cref) >= median
                || self.is_locked(cref);
            if keep {
                self.learnts.push(cref);
            } else {
                self.remove_clause(cref);
                self.stats.deleted += 1;
            }
        }
        self.maybe_compact();
    }

    /// Root-level simplification: with the solver at decision level 0,
    /// removes every clause the root assignment already satisfies (it can
    /// never participate in propagation or conflicts again) and clears the
    /// reason pointers of root facts (they are permanent; conflict
    /// analysis skips level 0). Runs automatically at the start of every
    /// solve once new root facts have appeared; [`Solver::num_clauses`]
    /// only counts what survives.
    pub fn simplify(&mut self) {
        debug_assert!(self.trail_lim.is_empty(), "simplify runs at the root");
        if self.unsat || self.prop_head < self.trail.len() || self.trail.len() == self.simplified_at
        {
            return;
        }
        for i in 0..self.trail.len() {
            self.reason[self.trail[i].var().index()] = None;
        }
        for learnt_list in [true, false] {
            let old = std::mem::take(if learnt_list {
                &mut self.learnts
            } else {
                &mut self.clauses
            });
            let mut kept = Vec::with_capacity(old.len());
            for cref in old {
                let len = self.arena.len(cref);
                let satisfied =
                    (0..len).any(|i| self.value(self.arena.lit(cref, i)) == LBool::True);
                if satisfied {
                    self.remove_clause(cref);
                } else {
                    kept.push(cref);
                }
            }
            *(if learnt_list {
                &mut self.learnts
            } else {
                &mut self.clauses
            }) = kept;
        }
        self.simplified_at = self.trail.len();
        self.maybe_compact();
    }

    /// Rebuilds the arena without its garbage records when fragmentation
    /// passes the threshold, remapping clause lists, watcher lists, and
    /// reason pointers through the relocation table.
    fn maybe_compact(&mut self) {
        if self.arena.wasted == 0 || self.arena.wasted_ratio() < COMPACT_WASTE {
            return;
        }
        let mut to: Vec<u32> = Vec::with_capacity(self.arena.data.len() - self.arena.wasted);
        for i in 0..self.clauses.len() {
            let cref = self.clauses[i];
            self.arena.relocate(cref, &mut to);
            self.clauses[i] = self.arena.forward(cref);
        }
        for i in 0..self.learnts.len() {
            let cref = self.learnts[i];
            self.arena.relocate(cref, &mut to);
            self.learnts[i] = self.arena.forward(cref);
        }
        for list in &mut self.watches {
            for w in list.iter_mut() {
                w.cref = self.arena.forward(w.cref);
            }
        }
        for r in &mut self.reason {
            *r = r.map(|cref| self.arena.forward(cref));
        }
        self.arena.data = to;
        self.arena.wasted = 0;
        self.stats.compactions += 1;
    }

    /// Computes the failed-assumption core once assumption `p` was found
    /// falsified: the subset of already-applied assumption decisions whose
    /// propagation closure implies `¬p`, plus `p` itself. Mirrors MiniSat's
    /// `analyzeFinal`, except the core is reported as the assumption
    /// literals themselves (their conjunction is inconsistent with the
    /// formula).
    fn analyze_final(&mut self, p: Lit) {
        self.failed.clear();
        self.failed.push(p);
        if self.decision_level() == 0 {
            return;
        }
        self.seen[p.var().index()] = true;
        for i in (self.trail_lim[0]..self.trail.len()).rev() {
            let q = self.trail[i];
            let v = q.var().index();
            if !self.seen[v] {
                continue;
            }
            self.seen[v] = false;
            match self.reason[v] {
                // Decisions below the branching levels are assumptions.
                None => self.failed.push(q),
                Some(cref) => {
                    for k in 1..self.arena.len(cref) {
                        let l = self.arena.lit(cref, k);
                        if self.level[l.var().index()] > 0 {
                            self.seen[l.var().index()] = true;
                        }
                    }
                }
            }
        }
        self.seen[p.var().index()] = false;
    }

    /// Runs the CDCL loop to completion with no assumptions.
    ///
    /// Equivalent to `solve_with_assumptions(&[])`; the solver may be
    /// re-used (and extended with clauses) afterwards.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with_assumptions(&[])
    }

    /// Decides the formula under the conjunction of `assumptions`.
    ///
    /// Assumptions act like unit clauses scoped to this one call: they are
    /// installed as the bottom-most decisions, so everything learnt while
    /// solving remains valid for later calls with different assumptions.
    /// On [`SolveResult::Unsat`], [`Solver::failed_assumptions`] holds an
    /// inconsistent subset of `assumptions` (empty if the formula itself is
    /// unsatisfiable). The solver backtracks to the root level before
    /// returning, so clauses may be added afterwards.
    ///
    /// # Panics
    ///
    /// Panics if an assumption references an unallocated variable.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.failed.clear();
        for l in assumptions {
            assert!(l.var().index() < self.num_vars(), "unallocated assumption");
        }
        if self.unsat {
            return SolveResult::Unsat;
        }
        self.backtrack(0);
        // Re-run root propagation: clauses added since the last call may
        // have enqueued new root facts.
        if self.propagate().is_some() {
            self.unsat = true;
            return SolveResult::Unsat;
        }
        // Drop clauses the accumulated root facts already satisfy.
        self.simplify();
        let mut conflicts_until_restart = luby(self.stats.restarts) * 100;
        // Budget learnt clauses against the *original* clause count so the
        // limit does not creep upwards across incremental calls.
        let mut learnt_limit = (self.clauses.len() / 3).max(2000);
        loop {
            if let Some(conflict) = self.propagate() {
                self.stats.conflicts += 1;
                if self.decision_level() == 0 {
                    self.unsat = true;
                    return SolveResult::Unsat;
                }
                let (learnt, bt) = self.analyze(conflict);
                // First-UIP clauses are RUP over the live database by
                // construction (they are resolution-derived from the
                // conflict and its reason clauses), so the log stays
                // independently checkable.
                self.log_proof(|| ProofEvent::Add(learnt.clone()));
                self.backtrack(bt);
                if learnt.len() == 1 {
                    let ok = self.enqueue(learnt[0], None);
                    debug_assert!(ok, "asserting literal must be enqueueable");
                } else {
                    let cref = self.attach(&learnt, true);
                    self.bump_clause(cref);
                    let ok = self.enqueue(learnt[0], Some(cref));
                    debug_assert!(ok, "asserting literal must be enqueueable");
                }
                self.analyze_scratch = learnt;
                self.var_inc /= VAR_DECAY;
                self.cla_inc /= CLA_DECAY;
                conflicts_until_restart = conflicts_until_restart.saturating_sub(1);
            } else {
                if conflicts_until_restart == 0 {
                    self.stats.restarts += 1;
                    conflicts_until_restart = luby(self.stats.restarts) * 100;
                    self.backtrack(0);
                }
                if self.learnts.len() > learnt_limit {
                    self.reduce_db();
                    learnt_limit += learnt_limit / 10;
                }
                // Install pending assumptions as the next decisions. A
                // satisfied assumption still opens a (possibly empty)
                // decision level so `decision_level()` keeps indexing the
                // assumption array; a falsified one yields the core.
                let mut next: Option<Lit> = None;
                while (self.decision_level() as usize) < assumptions.len() {
                    let p = assumptions[self.decision_level() as usize];
                    match self.value(p) {
                        LBool::True => self.trail_lim.push(self.trail.len()),
                        LBool::False => {
                            self.analyze_final(p);
                            self.backtrack(0);
                            return SolveResult::Unsat;
                        }
                        LBool::Undef => {
                            next = Some(p);
                            break;
                        }
                    }
                }
                let next = match next {
                    Some(p) => p,
                    None => match self.pick_branch() {
                        None => {
                            let model = self.assign.iter().map(|&a| a == LBool::True).collect();
                            self.backtrack(0);
                            return SolveResult::Sat(model);
                        }
                        Some(l) => {
                            self.stats.decisions += 1;
                            l
                        }
                    },
                };
                self.trail_lim.push(self.trail.len());
                let ok = self.enqueue(next, None);
                debug_assert!(ok, "decision variable was unassigned");
            }
        }
    }
}

/// The Luby restart sequence (1, 1, 2, 1, 1, 2, 4, …).
fn luby(i: u64) -> u64 {
    let i = i + 1;
    let mut k = 1u32;
    while (1u64 << k) < i + 1 {
        k += 1;
    }
    if (1u64 << k) == i + 1 {
        return 1 << (k - 1);
    }
    luby(i - (1 << (k - 1)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(solver: &mut Solver, n: usize) -> Vec<Var> {
        (0..n).map(|_| solver.new_var()).collect()
    }

    #[test]
    fn empty_formula_is_sat() {
        assert!(Solver::new().solve().is_sat());
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        s.add_clause([]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn unit_clauses_propagate() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_clause([v[0].positive()]);
        s.add_clause([v[0].negative(), v[1].positive()]);
        s.add_clause([v[1].negative(), v[2].negative()]);
        let m = s.solve().model().unwrap().to_vec();
        assert!(m[0] && m[1] && !m[2]);
    }

    #[test]
    fn contradictory_units_are_unsat() {
        let mut s = Solver::new();
        let v = s.new_var();
        s.add_clause([v.positive()]);
        s.add_clause([v.negative()]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn tautologies_are_dropped() {
        let mut s = Solver::new();
        let v = s.new_var();
        s.add_clause([v.positive(), v.negative()]);
        assert!(s.solve().is_sat());
    }

    #[test]
    fn simple_3sat_instance() {
        let mut s = Solver::new();
        let v = lits(&mut s, 4);
        s.add_clause([v[0].positive(), v[1].positive(), v[2].negative()]);
        s.add_clause([v[0].negative(), v[2].positive(), v[3].positive()]);
        s.add_clause([v[1].negative(), v[2].positive()]);
        s.add_clause([v[3].negative(), v[0].positive()]);
        let m = s.solve().model().unwrap().to_vec();
        // Verify the model satisfies every clause.
        let val = |l: Lit| m[l.var().index()] == l.is_positive();
        assert!(val(v[0].positive()) || val(v[1].positive()) || val(v[2].negative()));
        assert!(val(v[0].negative()) || val(v[2].positive()) || val(v[3].positive()));
        assert!(val(v[1].negative()) || val(v[2].positive()));
        assert!(val(v[3].negative()) || val(v[0].positive()));
    }

    /// Pigeonhole principle: n+1 pigeons cannot fit n holes.
    fn pigeonhole(pigeons: usize, holes: usize) -> SolveResult {
        let mut s = Solver::new();
        let mut at = vec![vec![Var(0); holes]; pigeons];
        for p in at.iter_mut() {
            for h in p.iter_mut() {
                *h = s.new_var();
            }
        }
        for p in 0..pigeons {
            s.add_clause((0..holes).map(|h| at[p][h].positive()));
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in (p1 + 1)..pigeons {
                    s.add_clause([at[p1][h].negative(), at[p2][h].negative()]);
                }
            }
        }
        s.solve()
    }

    #[test]
    fn pigeonhole_unsat() {
        assert_eq!(pigeonhole(5, 4), SolveResult::Unsat);
    }

    #[test]
    fn pigeonhole_sat_when_enough_holes() {
        assert!(pigeonhole(4, 4).is_sat());
    }

    #[test]
    fn order_heap_pops_by_activity_with_index_ties() {
        let mut h = OrderHeap::default();
        let activity = [1.0, 3.0, 3.0, 0.5];
        for i in 0..4u32 {
            h.push_var();
            h.insert(Var(i), &activity);
        }
        // Highest activity first; equal activities break to the lower index.
        assert_eq!(h.pop_max(&activity), Some(Var(1)));
        assert_eq!(h.pop_max(&activity), Some(Var(2)));
        assert_eq!(h.pop_max(&activity), Some(Var(0)));
        assert_eq!(h.pop_max(&activity), Some(Var(3)));
        assert_eq!(h.pop_max(&activity), None);
    }

    #[test]
    fn order_heap_reorders_after_bump_and_reinsert() {
        let mut h = OrderHeap::default();
        let mut activity = [0.0, 0.0, 0.0];
        for i in 0..3u32 {
            h.push_var();
            h.insert(Var(i), &activity);
        }
        activity[2] = 5.0;
        h.bumped(Var(2), &activity);
        assert_eq!(h.pop_max(&activity), Some(Var(2)));
        assert!(!h.contains(Var(2)));
        // Re-insertion (as on backtrack) puts it back on top; double insert
        // is a no-op.
        h.insert(Var(2), &activity);
        h.insert(Var(2), &activity);
        assert_eq!(h.pop_max(&activity), Some(Var(2)));
        assert_eq!(h.pop_max(&activity), Some(Var(0)));
        assert_eq!(h.pop_max(&activity), Some(Var(1)));
        assert_eq!(h.pop_max(&activity), None);
    }

    /// A solver built on one thread keeps working (same verdicts, retained
    /// learnt clauses) after moving to another — the migration pattern the
    /// detection engine's sharded solver-retention map performs.
    #[test]
    fn solver_migrates_between_threads() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_clause([v[0].positive(), v[1].positive()]);
        s.add_clause([v[1].negative(), v[2].positive()]);
        assert!(s.solve_with_assumptions(&[v[0].negative()]).is_sat());
        let (a, b) = (v[1], v[2]);
        let mut s = std::thread::spawn(move || {
            assert!(s.solve_with_assumptions(&[a.negative()]).is_sat());
            s
        })
        .join()
        .unwrap();
        let v = [v[0], a, b];
        s.add_clause([v[2].negative()]);
        assert_eq!(
            s.solve_with_assumptions(&[v[1].positive()]),
            SolveResult::Unsat
        );
        assert!(!s.failed_assumptions().is_empty());
    }

    #[test]
    fn luby_sequence_prefix() {
        let got: Vec<u64> = (0..9).map(luby).collect();
        assert_eq!(got, vec![1, 1, 2, 1, 1, 2, 4, 1, 1]);
    }

    #[test]
    fn stats_are_populated() {
        let s = &mut Solver::new();
        let v = lits(s, 6);
        for i in 0..5 {
            s.add_clause([v[i].positive(), v[i + 1].negative()]);
        }
        s.add_clause([v[0].negative(), v[5].positive()]);
        assert!(s.solve().is_sat());
        assert!(s.stats().propagations > 0 || s.stats().decisions > 0);
    }

    /// The satellite fix: `num_clauses` must report *live* clauses. A
    /// clause satisfied by root facts that arrive only after it was added
    /// is logically removed by `simplify` and must disappear from the
    /// count.
    #[test]
    fn num_clauses_reports_live_clauses_after_simplify() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_clause([v[0].positive(), v[1].positive()]);
        s.add_clause([v[0].positive(), v[2].positive()]);
        s.add_clause([v[1].positive(), v[2].negative()]);
        assert_eq!(s.num_clauses(), 3);
        // A later unit satisfies the first two clauses; before the next
        // solve they are still stored...
        s.add_clause([v[0].positive()]);
        assert_eq!(s.num_clauses(), 3);
        assert!(s.solve().is_sat());
        // ...but the solve's root simplification drops them (and only
        // them: the third clause mentions no root-true literal).
        assert_eq!(s.num_clauses(), 1);
        // Explicit simplify with nothing new to do is a no-op.
        s.simplify();
        assert_eq!(s.num_clauses(), 1);
        // Verdicts are unaffected.
        assert!(s.solve_with_assumptions(&[v[2].positive()]).is_sat());
        assert!(!s
            .solve_with_assumptions(&[v[1].negative(), v[2].positive()])
            .is_sat());
    }

    /// Arena compaction: force heavy learnt-clause deletion and check the
    /// solver keeps answering correctly afterwards (refs, watches, and
    /// reasons all survive relocation).
    #[test]
    fn compaction_preserves_verdicts_under_heavy_learning() {
        let mut s = Solver::new();
        // A guarded PHP(7, 6) produces thousands of learnt clauses.
        let act = s.new_var();
        let at: Vec<Vec<Var>> = (0..7)
            .map(|_| (0..6).map(|_| s.new_var()).collect())
            .collect();
        for row in &at {
            let mut c: Vec<Lit> = row.iter().map(|v| v.positive()).collect();
            c.push(act.negative());
            s.add_clause(c);
        }
        for h in 0..6 {
            for p1 in 0..7 {
                for p2 in (p1 + 1)..7 {
                    s.add_clause([act.negative(), at[p1][h].negative(), at[p2][h].negative()]);
                }
            }
        }
        assert!(!s.solve_with_assumptions(&[act.positive()]).is_sat());
        assert!(s.solve_with_assumptions(&[act.negative()]).is_sat());
        // The same verdicts hold on a re-query (watch lists stayed exact).
        assert!(!s.solve_with_assumptions(&[act.positive()]).is_sat());
    }

    /// Learnt-clause export/import: lemmas over the shared variable prefix
    /// transfer to a fingerprint-identical solver and shortcut its search.
    #[test]
    fn exported_learnts_seed_identical_solver() {
        let build = || {
            let mut s = Solver::new();
            let at: Vec<Vec<Var>> = (0..5)
                .map(|_| (0..4).map(|_| s.new_var()).collect())
                .collect();
            let base_vars = s.num_vars();
            // An extension guard above the base prefix, MiniSat-style.
            let guard = s.new_var();
            for row in &at {
                s.add_clause(row.iter().map(|v| v.positive()));
            }
            for h in 0..4 {
                for p1 in 0..5 {
                    for p2 in (p1 + 1)..5 {
                        s.add_clause([at[p1][h].negative(), at[p2][h].negative()]);
                    }
                }
            }
            // A guarded extension clause keeps the guard var live.
            s.add_clause([guard.negative(), at[0][0].positive()]);
            (s, base_vars, guard)
        };
        let (mut donor, base_vars, guard) = build();
        assert_eq!(
            donor.solve_with_assumptions(&[guard.negative()]),
            SolveResult::Unsat
        );
        let learnts = donor.retained_learnts(base_vars);
        assert!(!learnts.is_empty(), "refutation must retain lemmas");
        // No guard variable leaks through the export filter.
        for c in &learnts {
            assert!(c.iter().all(|l| l.var().index() < base_vars), "{c:?}");
        }

        let fresh_conflicts = {
            let (mut fresh, _, g) = build();
            assert!(!fresh.solve_with_assumptions(&[g.negative()]).is_sat());
            fresh.stats().conflicts
        };
        let (mut seeded, _, seeded_guard) = build();
        let installed = seeded.import_learnts(learnts.iter().map(Vec::as_slice));
        assert!(installed > 0);
        assert!(!seeded
            .solve_with_assumptions(&[seeded_guard.negative()])
            .is_sat());
        assert!(
            seeded.stats().conflicts < fresh_conflicts,
            "seeding must shortcut the refutation ({} vs {fresh_conflicts})",
            seeded.stats().conflicts
        );
    }

    /// Exhaustive check against brute force on all 3-CNF formulas over a
    /// small fixed set of clause shapes.
    #[test]
    fn agrees_with_brute_force_on_small_formulas() {
        let mut seed = 0x12345678u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..300 {
            let nv = 4 + (next() % 5) as usize; // 4..8 vars
            let nc = 5 + (next() % 25) as usize;
            let mut clauses = Vec::new();
            for _ in 0..nc {
                let len = 1 + (next() % 3) as usize;
                let mut cl = Vec::new();
                for _ in 0..len {
                    let v = (next() % nv as u64) as u32;
                    cl.push(Lit::new(Var(v), next() % 2 == 0));
                }
                clauses.push(cl);
            }
            // Brute force.
            let mut brute_sat = false;
            'outer: for m in 0..(1u32 << nv) {
                for cl in &clauses {
                    if !cl
                        .iter()
                        .any(|l| ((m >> l.var().0) & 1 == 1) == l.is_positive())
                    {
                        continue 'outer;
                    }
                }
                brute_sat = true;
                break;
            }
            // CDCL.
            let mut s = Solver::new();
            for _ in 0..nv {
                s.new_var();
            }
            for cl in &clauses {
                s.add_clause(cl.iter().copied());
            }
            let res = s.solve();
            assert_eq!(res.is_sat(), brute_sat, "disagreement on {clauses:?}");
            if let SolveResult::Sat(m) = res {
                for cl in &clauses {
                    assert!(
                        cl.iter().any(|l| m[l.var().index()] == l.is_positive()),
                        "model does not satisfy {cl:?}"
                    );
                }
            }
        }
    }
}
