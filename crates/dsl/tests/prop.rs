//! Property test: printing and re-parsing a generated program is the
//! identity (labels included).

use atropos_dsl::{
    parse, print_program, CmdLabel, Expr, FieldDecl, Program, Schema, SelectCmd, Stmt,
    Transaction, Ty, UpdateCmd, Value, Where,
};
use proptest::prelude::*;

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-50i64..50).prop_map(Expr::int),
        any::<bool>().prop_map(Expr::boolean),
        Just(Expr::arg("a")),
        Just(Expr::arg("b")),
        Just(Expr::field("x", "v")),
        Just(Expr::sum("x", "v")),
        "[a-z]{1,6}".prop_map(|s| Expr::Const(Value::Str(s))),
        Just(Expr::Uuid),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(l, r)| l.add(r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| l.sub(r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| l.eq(r)),
            (inner.clone(), inner).prop_map(|(l, r)| Expr::Not(Box::new(l.eq(r)))),
        ]
    })
}

fn where_strategy() -> impl Strategy<Value = Where> {
    prop_oneof![
        Just(Where::True),
        (0i64..10).prop_map(|n| Where::eq("id", Expr::int(n))),
        (0i64..10).prop_map(|n| Where::eq("id", Expr::int(n)).and(Where::Cmp {
            field: "v".into(),
            op: atropos_dsl::CmpOp::Gt,
            expr: Expr::int(n),
        })),
    ]
}

fn program_strategy() -> impl Strategy<Value = Program> {
    (
        prop::collection::vec((where_strategy(), expr_strategy()), 1..5),
        expr_strategy(),
    )
        .prop_map(|(cmds, ret)| {
            let schema = Schema::new(
                "T",
                vec![FieldDecl::key("id", Ty::Int), FieldDecl::new("v", Ty::Int)],
            );
            let mut body: Vec<Stmt> = vec![Stmt::Select(SelectCmd {
                label: CmdLabel("S0".into()),
                var: "x".into(),
                fields: Some(vec!["v".into()]),
                schema: "T".into(),
                where_: Where::True,
            })];
            for (i, (w, e)) in cmds.into_iter().enumerate() {
                body.push(Stmt::Update(UpdateCmd {
                    label: CmdLabel(format!("U{i}")),
                    schema: "T".into(),
                    assigns: vec![("v".into(), e)],
                    where_: w,
                }));
            }
            Program {
                schemas: vec![schema],
                transactions: vec![Transaction {
                    name: "t".into(),
                    params: vec![
                        atropos_dsl::Param { name: "a".into(), ty: Ty::Int },
                        atropos_dsl::Param { name: "b".into(), ty: Ty::Int },
                    ],
                    body,
                    ret,
                }],
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn print_parse_round_trip(p in program_strategy()) {
        let text = print_program(&p);
        let back = parse(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        prop_assert_eq!(back, p);
    }
}
