//! Recursive-descent parser for the database-program DSL.
//!
//! Grammar sketch (keywords case-insensitive):
//!
//! ```text
//! program   := (schema | txn)*
//! schema    := "schema" IDENT "{" field ("," field)* "}"
//! field     := IDENT ":" ("int"|"bool"|"string"|"uuid") ("key")?
//! txn       := "txn" IDENT "(" params? ")" "{" stmt* "return" expr ";" "}"
//! stmt      := label? (select | update | insert | delete) | if | iterate
//! select    := IDENT ":=" "select" ("*" | IDENT,+) "from" IDENT ("where" where)? ";"
//! update    := "update" IDENT "set" IDENT "=" expr ,+ ("where" where)? ";"
//! insert    := "insert" "into" IDENT "values" "(" IDENT "=" expr ,+ ")" ";"
//! delete    := "delete" "from" IDENT ("where" where)? ";"
//! if        := "if" "(" expr ")" "{" stmt* "}"
//! iterate   := "iterate" "(" expr ")" "{" stmt* "}"
//! where     := wor ; wor := wand ("||" wand)* ; wand := watom ("&&" watom)*
//! watom     := "(" where ")" | "true" | IDENT cmp expr
//! expr      := bor ; bor := band ("||" band)* ; band := cmp ("&&" cmp)*
//! cmp       := add (cmpop add)? ; add := mul (("+"|"-") mul)*
//! mul       := unary (("*"|"/") unary)* ; unary := "!" unary | "-" unary | prim
//! prim      := INT | STRING | "true" | "false" | "iter" | "uuid" "(" ")"
//!            | ("sum"|"min"|"max"|"count") "(" IDENT "." IDENT ")"
//!            | IDENT "." IDENT ("[" expr "]")?  | IDENT | "(" expr ")"
//! ```
//!
//! Command labels default to `S1, S2, …` (selects) / `U1, …` (updates) /
//! `I1, …` (inserts) / `D1, …` (deletes), numbered per program in source
//! order, and can be overridden with an explicit `@LABEL` prefix.

use crate::ast::*;
use crate::error::{DslError, Span};
use crate::lexer::{lex, Spanned, Token};

/// Parses a complete program from DSL source text.
///
/// # Errors
///
/// Returns [`DslError`] on lexical or syntax errors. The result is *not* yet
/// resolved or type checked; see [`crate::resolve::check_program`].
///
/// # Examples
///
/// ```
/// let src = r#"
///     schema T { id: int key, v: int }
///     txn get(id: int) {
///         x := select v from T where id = id;
///         return x.v;
///     }
/// "#;
/// let prog = atropos_dsl::parse(src)?;
/// assert_eq!(prog.transactions.len(), 1);
/// # Ok::<(), atropos_dsl::DslError>(())
/// ```
pub fn parse(src: &str) -> Result<Program, DslError> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        counters: LabelCounters::default(),
    };
    p.program()
}

#[derive(Default)]
struct LabelCounters {
    select: u32,
    update: u32,
    insert: u32,
    delete: u32,
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
    counters: LabelCounters,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.toks[self.pos].token
    }

    fn span(&self) -> Span {
        self.toks[self.pos].span
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.pos].token.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> DslError {
        DslError::Parse {
            message: msg.into(),
            span: self.span(),
        }
    }

    fn expect(&mut self, t: &Token) -> Result<(), DslError> {
        if self.peek() == t {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {t}, found {}", self.peek())))
        }
    }

    /// Peeks a keyword (case-insensitive identifier).
    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), DslError> {
        if self.at_kw(kw) {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected keyword `{kw}`, found {}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String, DslError> {
        match self.peek().clone() {
            Token::Ident(s) => {
                self.bump();
                Ok(s)
            }
            t => Err(self.err(format!("expected identifier, found {t}"))),
        }
    }

    fn program(&mut self) -> Result<Program, DslError> {
        let mut prog = Program::new();
        loop {
            if self.at_kw("schema") {
                prog.schemas.push(self.schema()?);
            } else if self.at_kw("txn") {
                prog.transactions.push(self.txn()?);
            } else if *self.peek() == Token::Eof {
                return Ok(prog);
            } else {
                return Err(self.err(format!(
                    "expected `schema` or `txn`, found {}",
                    self.peek()
                )));
            }
        }
    }

    fn schema(&mut self) -> Result<Schema, DslError> {
        self.expect_kw("schema")?;
        let name = self.ident()?;
        self.expect(&Token::LBrace)?;
        let mut fields = Vec::new();
        loop {
            let fname = self.ident()?;
            self.expect(&Token::Colon)?;
            let ty = self.ty()?;
            let primary_key = if self.at_kw("key") {
                self.bump();
                true
            } else {
                false
            };
            fields.push(FieldDecl {
                name: fname,
                ty,
                primary_key,
            });
            if *self.peek() == Token::Comma {
                self.bump();
            } else {
                break;
            }
        }
        self.expect(&Token::RBrace)?;
        Ok(Schema { name, fields })
    }

    fn ty(&mut self) -> Result<Ty, DslError> {
        let name = self.ident()?;
        match name.to_ascii_lowercase().as_str() {
            "int" => Ok(Ty::Int),
            "bool" => Ok(Ty::Bool),
            "string" | "str" => Ok(Ty::Str),
            "uuid" => Ok(Ty::Uuid),
            other => Err(self.err(format!("unknown type `{other}`"))),
        }
    }

    fn txn(&mut self) -> Result<Transaction, DslError> {
        self.expect_kw("txn")?;
        let name = self.ident()?;
        self.expect(&Token::LParen)?;
        let mut params = Vec::new();
        if *self.peek() != Token::RParen {
            loop {
                let pname = self.ident()?;
                self.expect(&Token::Colon)?;
                let ty = self.ty()?;
                params.push(Param { name: pname, ty });
                if *self.peek() == Token::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&Token::RParen)?;
        self.expect(&Token::LBrace)?;
        let mut body = Vec::new();
        while !self.at_kw("return") {
            body.push(self.stmt()?);
        }
        self.expect_kw("return")?;
        let ret = self.expr()?;
        self.expect(&Token::Semi)?;
        self.expect(&Token::RBrace)?;
        Ok(Transaction {
            name,
            params,
            body,
            ret,
        })
    }

    fn stmt(&mut self) -> Result<Stmt, DslError> {
        let label = if let Token::Label(l) = self.peek().clone() {
            self.bump();
            Some(CmdLabel(l))
        } else {
            None
        };
        if self.at_kw("if") {
            if label.is_some() {
                return Err(self.err("labels are only allowed on database commands"));
            }
            self.bump();
            self.expect(&Token::LParen)?;
            let cond = self.expr()?;
            self.expect(&Token::RParen)?;
            let body = self.block()?;
            return Ok(Stmt::If { cond, body });
        }
        if self.at_kw("iterate") {
            if label.is_some() {
                return Err(self.err("labels are only allowed on database commands"));
            }
            self.bump();
            self.expect(&Token::LParen)?;
            let count = self.expr()?;
            self.expect(&Token::RParen)?;
            let body = self.block()?;
            return Ok(Stmt::Iterate { count, body });
        }
        if self.at_kw("update") {
            self.bump();
            let schema = self.ident()?;
            self.expect_kw("set")?;
            let mut assigns = Vec::new();
            loop {
                let f = self.ident()?;
                self.expect(&Token::Eq)?;
                let e = self.expr()?;
                assigns.push((f, e));
                if *self.peek() == Token::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
            let where_ = self.opt_where()?;
            self.expect(&Token::Semi)?;
            self.counters.update += 1;
            let label = label.unwrap_or_else(|| CmdLabel(format!("U{}", self.counters.update)));
            return Ok(Stmt::Update(UpdateCmd {
                label,
                schema,
                assigns,
                where_,
            }));
        }
        if self.at_kw("insert") {
            self.bump();
            self.expect_kw("into")?;
            let schema = self.ident()?;
            self.expect_kw("values")?;
            self.expect(&Token::LParen)?;
            let mut values = Vec::new();
            loop {
                let f = self.ident()?;
                self.expect(&Token::Eq)?;
                let e = self.expr()?;
                values.push((f, e));
                if *self.peek() == Token::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            self.expect(&Token::Semi)?;
            self.counters.insert += 1;
            let label = label.unwrap_or_else(|| CmdLabel(format!("I{}", self.counters.insert)));
            return Ok(Stmt::Insert(InsertCmd {
                label,
                schema,
                values,
            }));
        }
        if self.at_kw("delete") {
            self.bump();
            self.expect_kw("from")?;
            let schema = self.ident()?;
            let where_ = self.opt_where()?;
            self.expect(&Token::Semi)?;
            self.counters.delete += 1;
            let label = label.unwrap_or_else(|| CmdLabel(format!("D{}", self.counters.delete)));
            return Ok(Stmt::Delete(DeleteCmd {
                label,
                schema,
                where_,
            }));
        }
        // select: IDENT := select ...
        let var = self.ident()?;
        self.expect(&Token::Assign)?;
        self.expect_kw("select")?;
        let fields = if *self.peek() == Token::StarTok {
            self.bump();
            None
        } else {
            let mut fs = vec![self.ident()?];
            while *self.peek() == Token::Comma {
                self.bump();
                fs.push(self.ident()?);
            }
            Some(fs)
        };
        self.expect_kw("from")?;
        let schema = self.ident()?;
        let where_ = self.opt_where()?;
        self.expect(&Token::Semi)?;
        self.counters.select += 1;
        let label = label.unwrap_or_else(|| CmdLabel(format!("S{}", self.counters.select)));
        Ok(Stmt::Select(SelectCmd {
            label,
            var,
            fields,
            schema,
            where_,
        }))
    }

    fn block(&mut self) -> Result<Vec<Stmt>, DslError> {
        self.expect(&Token::LBrace)?;
        let mut body = Vec::new();
        while *self.peek() != Token::RBrace {
            body.push(self.stmt()?);
        }
        self.expect(&Token::RBrace)?;
        Ok(body)
    }

    fn opt_where(&mut self) -> Result<Where, DslError> {
        if self.at_kw("where") {
            self.bump();
            self.where_or()
        } else {
            Ok(Where::True)
        }
    }

    fn where_or(&mut self) -> Result<Where, DslError> {
        let mut l = self.where_and()?;
        while *self.peek() == Token::OrOr {
            self.bump();
            let r = self.where_and()?;
            l = Where::Or(Box::new(l), Box::new(r));
        }
        Ok(l)
    }

    fn where_and(&mut self) -> Result<Where, DslError> {
        let mut l = self.where_atom()?;
        while *self.peek() == Token::AndAnd {
            self.bump();
            let r = self.where_atom()?;
            l = Where::And(Box::new(l), Box::new(r));
        }
        Ok(l)
    }

    fn where_atom(&mut self) -> Result<Where, DslError> {
        if *self.peek() == Token::LParen {
            self.bump();
            let w = self.where_or()?;
            self.expect(&Token::RParen)?;
            return Ok(w);
        }
        if self.at_kw("true") {
            self.bump();
            return Ok(Where::True);
        }
        let field = self.ident()?;
        let op = self.cmp_op()?;
        // The right-hand side must stop before `&&` / `||`: those bind the
        // where clause's conjuncts, not the comparison operand. A genuinely
        // boolean operand can be parenthesized.
        let expr = self.expr_cmp()?;
        Ok(Where::Cmp { field, op, expr })
    }

    fn cmp_op(&mut self) -> Result<CmpOp, DslError> {
        let op = match self.peek() {
            Token::Eq => CmpOp::Eq,
            Token::Ne => CmpOp::Ne,
            Token::Lt => CmpOp::Lt,
            Token::Le => CmpOp::Le,
            Token::Gt => CmpOp::Gt,
            Token::Ge => CmpOp::Ge,
            t => return Err(self.err(format!("expected comparison operator, found {t}"))),
        };
        self.bump();
        Ok(op)
    }

    fn expr(&mut self) -> Result<Expr, DslError> {
        self.expr_or()
    }

    fn expr_or(&mut self) -> Result<Expr, DslError> {
        let mut l = self.expr_and()?;
        while *self.peek() == Token::OrOr {
            self.bump();
            let r = self.expr_and()?;
            l = Expr::Bool(BoolOp::Or, Box::new(l), Box::new(r));
        }
        Ok(l)
    }

    fn expr_and(&mut self) -> Result<Expr, DslError> {
        let mut l = self.expr_cmp()?;
        while *self.peek() == Token::AndAnd {
            self.bump();
            let r = self.expr_cmp()?;
            l = Expr::Bool(BoolOp::And, Box::new(l), Box::new(r));
        }
        Ok(l)
    }

    fn expr_cmp(&mut self) -> Result<Expr, DslError> {
        let l = self.expr_add()?;
        let op = match self.peek() {
            Token::Eq => CmpOp::Eq,
            Token::Ne => CmpOp::Ne,
            Token::Lt => CmpOp::Lt,
            Token::Le => CmpOp::Le,
            Token::Gt => CmpOp::Gt,
            Token::Ge => CmpOp::Ge,
            _ => return Ok(l),
        };
        self.bump();
        let r = self.expr_add()?;
        Ok(Expr::Cmp(op, Box::new(l), Box::new(r)))
    }

    fn expr_add(&mut self) -> Result<Expr, DslError> {
        let mut l = self.expr_mul()?;
        loop {
            let op = match self.peek() {
                Token::Plus => BinOp::Add,
                Token::Minus => BinOp::Sub,
                _ => return Ok(l),
            };
            self.bump();
            let r = self.expr_mul()?;
            l = Expr::Bin(op, Box::new(l), Box::new(r));
        }
    }

    fn expr_mul(&mut self) -> Result<Expr, DslError> {
        let mut l = self.expr_unary()?;
        loop {
            let op = match self.peek() {
                Token::StarTok => BinOp::Mul,
                Token::Slash => BinOp::Div,
                _ => return Ok(l),
            };
            self.bump();
            let r = self.expr_unary()?;
            l = Expr::Bin(op, Box::new(l), Box::new(r));
        }
    }

    fn expr_unary(&mut self) -> Result<Expr, DslError> {
        match self.peek() {
            Token::Bang => {
                self.bump();
                Ok(Expr::Not(Box::new(self.expr_unary()?)))
            }
            Token::Minus => {
                self.bump();
                // Fold `-literal` into a negative constant so printing and
                // re-parsing round-trips; other operands desugar to `0 - e`.
                if let Token::Int(n) = *self.peek() {
                    self.bump();
                    return Ok(Expr::int(-n));
                }
                let e = self.expr_unary()?;
                Ok(Expr::Bin(
                    BinOp::Sub,
                    Box::new(Expr::int(0)),
                    Box::new(e),
                ))
            }
            _ => self.expr_prim(),
        }
    }

    fn expr_prim(&mut self) -> Result<Expr, DslError> {
        match self.peek().clone() {
            Token::Int(n) => {
                self.bump();
                Ok(Expr::int(n))
            }
            Token::Str(s) => {
                self.bump();
                Ok(Expr::Const(Value::Str(s)))
            }
            Token::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Token::Ident(id) => {
                let lower = id.to_ascii_lowercase();
                match lower.as_str() {
                    "true" => {
                        self.bump();
                        return Ok(Expr::boolean(true));
                    }
                    "false" => {
                        self.bump();
                        return Ok(Expr::boolean(false));
                    }
                    "iter" => {
                        self.bump();
                        return Ok(Expr::Iter);
                    }
                    "uuid" => {
                        self.bump();
                        self.expect(&Token::LParen)?;
                        self.expect(&Token::RParen)?;
                        return Ok(Expr::Uuid);
                    }
                    "sum" | "min" | "max" | "count" => {
                        let agg = match lower.as_str() {
                            "sum" => AggOp::Sum,
                            "min" => AggOp::Min,
                            "max" => AggOp::Max,
                            _ => AggOp::Count,
                        };
                        self.bump();
                        self.expect(&Token::LParen)?;
                        let var = self.ident()?;
                        self.expect(&Token::Dot)?;
                        let field = self.ident()?;
                        self.expect(&Token::RParen)?;
                        return Ok(Expr::Agg(agg, var, field));
                    }
                    _ => {}
                }
                self.bump();
                if *self.peek() == Token::Dot {
                    self.bump();
                    let field = self.ident()?;
                    if *self.peek() == Token::LBracket {
                        self.bump();
                        let idx = self.expr()?;
                        self.expect(&Token::RBracket)?;
                        Ok(Expr::At(Box::new(idx), id, field))
                    } else {
                        Ok(Expr::At(Box::new(Expr::int(0)), id, field))
                    }
                } else {
                    Ok(Expr::Arg(id))
                }
            }
            t => Err(self.err(format!("expected expression, found {t}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_course_management_program() {
        let src = r#"
            schema STUDENT { st_id: int key, st_name: string, st_em_id: int, st_co_id: int, st_reg: bool }
            schema COURSE  { co_id: int key, co_avail: bool, co_st_cnt: int }
            schema EMAIL   { em_id: int key, em_addr: string }

            txn getSt(id: int) {
                x := select * from STUDENT where st_id = id;
                y := select em_addr from EMAIL where em_id = x.st_em_id;
                z := select co_avail from COURSE where co_id = x.st_co_id;
                return y.em_addr;
            }

            txn regSt(id: int, course: int) {
                update STUDENT set st_co_id = course, st_reg = true where st_id = id;
                x := select co_st_cnt from COURSE where co_id = course;
                update COURSE set co_st_cnt = x.co_st_cnt + 1, co_avail = true where co_id = course;
                return 0;
            }
        "#;
        let p = parse(src).unwrap();
        assert_eq!(p.schemas.len(), 3);
        assert_eq!(p.transactions.len(), 2);
        assert_eq!(p.command_count(), 6);
        let get = p.transaction("getSt").unwrap();
        assert_eq!(get.params.len(), 1);
        match &get.body[0] {
            Stmt::Select(s) => {
                assert_eq!(s.var, "x");
                assert!(s.fields.is_none());
                assert_eq!(s.label.0, "S1");
            }
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn explicit_labels_override_defaults() {
        let src = r#"
            schema T { id: int key, v: int }
            txn t(a: int) {
                @FOO update T set v = a where id = a;
                return 0;
            }
        "#;
        let p = parse(src).unwrap();
        assert!(p.command(&"FOO".into()).is_some());
    }

    #[test]
    fn parses_insert_delete_if_iterate() {
        let src = r#"
            schema L { id: int key, n: int }
            txn t(a: int) {
                insert into L values (id = a, n = 1);
                if (a > 0) {
                    delete from L where id = a;
                }
                iterate (3) {
                    x := select n from L where id = iter;
                }
                return sum(x.n);
            }
        "#;
        let p = parse(src).unwrap();
        let t = p.transaction("t").unwrap();
        assert_eq!(t.body.len(), 3);
        assert!(matches!(t.ret, Expr::Agg(AggOp::Sum, _, _)));
        assert_eq!(p.command_count(), 3);
    }

    #[test]
    fn parses_uuid_and_indexing() {
        let src = r#"
            schema L { id: int key, lid: uuid key, n: int }
            txn t(a: int) {
                insert into L values (id = a, lid = uuid(), n = 1);
                x := select n from L where id = a;
                return x.n[1] + x.n;
            }
        "#;
        let p = parse(src).unwrap();
        let t = p.transaction("t").unwrap();
        match &t.ret {
            Expr::Bin(BinOp::Add, l, r) => {
                assert!(matches!(**l, Expr::At(_, _, _)));
                assert!(matches!(**r, Expr::At(_, _, _)));
            }
            other => panic!("unexpected ret {other:?}"),
        }
    }

    #[test]
    fn missing_where_means_full_scan() {
        let src = r#"
            schema T { id: int key, v: int }
            txn t() {
                x := select v from T;
                return sum(x.v);
            }
        "#;
        let p = parse(src).unwrap();
        match &p.transactions[0].body[0] {
            Stmt::Select(s) => assert_eq!(s.where_, Where::True),
            _ => unreachable!(),
        }
    }

    #[test]
    fn operator_precedence() {
        let src = r#"
            schema T { id: int key, v: int }
            txn t(a: int, b: int) {
                return a + b * 2 = a && b > 0;
            }
        "#;
        let p = parse(src).unwrap();
        // (&& ((= (+ a (* b 2)) a) (> b 0)))
        match &p.transactions[0].ret {
            Expr::Bool(BoolOp::And, l, _) => match &**l {
                Expr::Cmp(CmpOp::Eq, ll, _) => {
                    assert!(matches!(**ll, Expr::Bin(BinOp::Add, _, _)));
                }
                o => panic!("bad tree {o:?}"),
            },
            o => panic!("bad tree {o:?}"),
        }
    }

    #[test]
    fn rejects_label_on_control_statement() {
        let src = r#"
            schema T { id: int key }
            txn t(a: int) {
                @X if (a > 0) { }
                return 0;
            }
        "#;
        assert!(parse(src).is_err());
    }

    #[test]
    fn error_reports_position() {
        let err = parse("schema T { id ; }").unwrap_err();
        match err {
            DslError::Parse { span, .. } => assert!(span.start > 0),
            other => panic!("expected parse error, got {other:?}"),
        }
    }
}
