//! Pretty-printer emitting canonical DSL source.
//!
//! The output parses back to an equal [`Program`] (labels included), which is
//! verified by a round-trip property test.

use std::fmt::Write;

use crate::ast::*;

/// Renders a whole program to canonical DSL text.
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    for s in &p.schemas {
        print_schema(&mut out, s);
        out.push('\n');
    }
    for t in &p.transactions {
        print_txn(&mut out, t);
        out.push('\n');
    }
    out
}

fn print_schema(out: &mut String, s: &Schema) {
    let _ = write!(out, "schema {} {{ ", s.name);
    for (i, f) in s.fields.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{}: {}", f.name, f.ty);
        if f.primary_key {
            out.push_str(" key");
        }
    }
    out.push_str(" }\n");
}

fn print_txn(out: &mut String, t: &Transaction) {
    let _ = write!(out, "txn {}(", t.name);
    for (i, p) in t.params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{}: {}", p.name, p.ty);
    }
    out.push_str(") {\n");
    for s in &t.body {
        print_stmt(out, s, 1);
    }
    let _ = write!(out, "    return {};\n}}\n", print_expr(&t.ret));
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn print_stmt(out: &mut String, s: &Stmt, level: usize) {
    indent(out, level);
    match s {
        Stmt::Select(c) => {
            let fields = match &c.fields {
                None => "*".to_owned(),
                Some(fs) => fs.join(", "),
            };
            let _ = writeln!(
                out,
                "@{} {} := select {} from {}{};",
                c.label,
                c.var,
                fields,
                c.schema,
                print_where_suffix(&c.where_)
            );
        }
        Stmt::Update(c) => {
            let assigns = c
                .assigns
                .iter()
                .map(|(f, e)| format!("{f} = {}", print_expr(e)))
                .collect::<Vec<_>>()
                .join(", ");
            let _ = writeln!(
                out,
                "@{} update {} set {}{};",
                c.label,
                c.schema,
                assigns,
                print_where_suffix(&c.where_)
            );
        }
        Stmt::Insert(c) => {
            let values = c
                .values
                .iter()
                .map(|(f, e)| format!("{f} = {}", print_expr(e)))
                .collect::<Vec<_>>()
                .join(", ");
            let _ = writeln!(out, "@{} insert into {} values ({});", c.label, c.schema, values);
        }
        Stmt::Delete(c) => {
            let _ = writeln!(
                out,
                "@{} delete from {}{};",
                c.label,
                c.schema,
                print_where_suffix(&c.where_)
            );
        }
        Stmt::If { cond, body } => {
            let _ = writeln!(out, "if ({}) {{", print_expr(cond));
            for s in body {
                print_stmt(out, s, level + 1);
            }
            indent(out, level);
            out.push_str("}\n");
        }
        Stmt::Iterate { count, body } => {
            let _ = writeln!(out, "iterate ({}) {{", print_expr(count));
            for s in body {
                print_stmt(out, s, level + 1);
            }
            indent(out, level);
            out.push_str("}\n");
        }
    }
}

fn print_where_suffix(w: &Where) -> String {
    match w {
        Where::True => String::new(),
        _ => format!(" where {}", print_where(w)),
    }
}

/// Renders a `WHERE` clause.
pub fn print_where(w: &Where) -> String {
    match w {
        Where::True => "true".to_owned(),
        Where::Cmp { field, op, expr } => {
            format!("{field} {} {}", op.symbol(), print_expr(expr))
        }
        Where::And(l, r) => format!("({}) && ({})", print_where(l), print_where(r)),
        Where::Or(l, r) => format!("({}) || ({})", print_where(l), print_where(r)),
    }
}

/// Renders an expression with full parenthesization of compound operands.
pub fn print_expr(e: &Expr) -> String {
    match e {
        Expr::Const(Value::Int(n)) => format!("{n}"),
        Expr::Const(Value::Bool(b)) => format!("{b}"),
        Expr::Const(Value::Str(s)) => format!("{s:?}"),
        // uuid literals cannot appear in source; render as an opaque call.
        Expr::Const(Value::Uuid(_)) => "uuid()".to_owned(),
        Expr::Arg(a) => a.clone(),
        Expr::Bin(op, l, r) => format!("{} {} {}", atom(l), op.symbol(), atom(r)),
        Expr::Cmp(op, l, r) => format!("{} {} {}", atom(l), op.symbol(), atom(r)),
        Expr::Bool(op, l, r) => format!("{} {} {}", atom(l), op.symbol(), atom(r)),
        Expr::Not(x) => format!("!{}", atom(x)),
        Expr::Iter => "iter".to_owned(),
        Expr::Agg(agg, v, f) => format!("{}({v}.{f})", agg.name()),
        Expr::At(idx, v, f) => match &**idx {
            Expr::Const(Value::Int(0)) => format!("{v}.{f}"),
            _ => format!("{v}.{f}[{}]", print_expr(idx)),
        },
        Expr::Uuid => "uuid()".to_owned(),
    }
}

fn atom(e: &Expr) -> String {
    match e {
        Expr::Bin(..) | Expr::Cmp(..) | Expr::Bool(..) => format!("({})", print_expr(e)),
        _ => print_expr(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    const SRC: &str = r#"
        schema STUDENT { st_id: int key, st_name: string, st_em_id: int }
        schema EMAIL { em_id: int key, em_addr: string }
        txn setSt(id: int, name: string, email: string) {
            x := select st_em_id from STUDENT where st_id = id;
            update STUDENT set st_name = name where st_id = id;
            update EMAIL set em_addr = email where em_id = x.st_em_id;
            return 0;
        }
        txn weird(a: int) {
            if (a > 0 && a < 10) {
                insert into EMAIL values (em_id = a, em_addr = "x");
            }
            iterate (a) {
                delete from EMAIL where em_id = iter;
            }
            y := select * from STUDENT;
            return sum(y.st_em_id) + a * 2;
        }
    "#;

    #[test]
    fn round_trips_through_parser() {
        let p1 = parse(SRC).unwrap();
        let text = print_program(&p1);
        let p2 = parse(&text).unwrap();
        assert_eq!(p1, p2, "printed program:\n{text}");
    }

    /// `.T` labels — minted by the triple mode's chain rules
    /// (`atropos_core::chain`) when they materialize or fuse commands —
    /// must survive a print/parse round trip like every other derived
    /// label, or a repaired program would lose its chain-rule provenance
    /// the first time it is persisted.
    #[test]
    fn round_trips_chain_rule_labels() {
        let p1 = parse(
            "schema MSG { m_id: int key, m_body: int, m_f_body: int }
             txn relay(m: int, x_v: int) {
                 @W2.T update MSG set m_f_body = x_v where m_id = m;
                 @R3.T y := select m_f_body from MSG where m_id = m;
                 return y.m_f_body;
             }",
        )
        .unwrap();
        let text = print_program(&p1);
        assert!(text.contains("@W2.T"), "printed program:\n{text}");
        assert!(text.contains("@R3.T"), "printed program:\n{text}");
        let p2 = parse(&text).unwrap();
        assert_eq!(p1, p2, "printed program:\n{text}");
    }

    #[test]
    fn prints_field_access_without_index_zero() {
        assert_eq!(print_expr(&Expr::field("x", "f")), "x.f");
        let idx = Expr::At(Box::new(Expr::int(2)), "x".into(), "f".into());
        assert_eq!(print_expr(&idx), "x.f[2]");
    }

    #[test]
    fn where_true_is_omitted() {
        let p = parse("schema T { id: int key }\ntxn t() { x := select * from T; return 0; }")
            .unwrap();
        let text = print_program(&p);
        assert!(!text.contains("where true"));
    }

    #[test]
    fn parenthesizes_nested_operators() {
        let e = Expr::int(1).add(Expr::int(2)).add(Expr::int(3));
        assert_eq!(print_expr(&e), "(1 + 2) + 3");
    }
}
