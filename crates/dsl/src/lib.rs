//! # atropos-dsl
//!
//! Front-end for the database-program DSL of *Repairing Serializability Bugs
//! in Distributed Database Programs via Automated Schema Refactoring*
//! (PLDI 2021), Fig. 5.
//!
//! A program is a set of relational [`Schema`]s plus a set of
//! [`Transaction`]s whose bodies mix database commands (`SELECT`, `UPDATE`,
//! `INSERT`, `DELETE`) with bounded control flow (`if`, `iterate`). The crate
//! provides:
//!
//! * the [`ast`] module — the abstract syntax tree;
//! * [`parse`] — a recursive-descent parser for the textual surface syntax;
//! * [`print_program`] — a canonical pretty-printer (round-trips with
//!   [`parse`]);
//! * [`check_program`] — name resolution and type checking.
//!
//! # Command-label grammar
//!
//! Commands may carry a `@label` annotation, referenced by the detector's
//! access pairs and the repair engine's steps:
//!
//! ```text
//! label   ::= segment ("." segment)*
//! segment ::= [A-Za-z0-9_]+
//! ```
//!
//! Every dot-separated segment must be non-empty — `@`, `@.L`, `@S1.`,
//! and `@S1..L` are lexing errors. The suffix namespace after the first
//! dot is **reserved for the repair engine**, which derives labels from
//! the command it refactors: splitting `@S1` appends a 1-based part index
//! (`@S1.1`, `@S1.2`, …) and logging rewrites append the literal `L`
//! segment (`@S1.L`). Within that reserved namespace the literal `T`
//! segment (`@S1.T`) belongs to the **triple detection mode's chain
//! rules**: relay materialization and chain-cut merge
//! (`atropos_core::chain`) mint their rewritten commands under `.T`
//! (`@W2.T`, `@R3.T`) so a repaired program records which commands the
//! three-instance pass produced — neither hand-written programs nor
//! pair-mode rewrites may use it. Hand-written programs should therefore
//! use dot-free labels; derived labels survive a print/parse round trip
//! like any other.
//!
//! # Examples
//!
//! ```
//! use atropos_dsl::{parse, check_program, print_program};
//!
//! let src = r#"
//!     schema ACCOUNT { acc_id: int key, balance: int }
//!     txn deposit(id: int, amount: int) {
//!         x := select balance from ACCOUNT where acc_id = id;
//!         update ACCOUNT set balance = x.balance + amount where acc_id = id;
//!         return x.balance;
//!     }
//! "#;
//! let program = parse(src)?;
//! check_program(&program)?;
//! let printed = print_program(&program);
//! assert_eq!(parse(&printed)?, program);
//! # Ok::<(), atropos_dsl::DslError>(())
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod resolve;

pub use ast::{
    AggOp, BinOp, BoolOp, CmdLabel, CmpOp, DeleteCmd, Expr, FieldDecl, InsertCmd, Param, Program,
    Schema, SelectCmd, Stmt, Transaction, Ty, UpdateCmd, Value, Where, ALIVE_FIELD,
};
pub use error::{DslError, Span};
pub use parser::parse;
pub use printer::{print_expr, print_program, print_where};
pub use resolve::{check_program, ProgramInfo};
