//! Error types for parsing, resolution, and type checking.

use std::error::Error;
use std::fmt;

/// A byte range in the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// First byte (inclusive).
    pub start: usize,
    /// Last byte (exclusive).
    pub end: usize,
}

impl Span {
    /// Computes the 1-based line and column of the span start inside `src`.
    pub fn line_col(&self, src: &str) -> (usize, usize) {
        let mut line = 1;
        let mut col = 1;
        for (i, c) in src.char_indices() {
            if i >= self.start {
                break;
            }
            if c == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        (line, col)
    }
}

/// Errors produced by the DSL front-end.
#[derive(Debug, Clone, PartialEq)]
pub enum DslError {
    /// Lexical error.
    Lex {
        /// Human-readable description.
        message: String,
        /// Offending location.
        span: Span,
    },
    /// Syntax error.
    Parse {
        /// Human-readable description.
        message: String,
        /// Offending location.
        span: Span,
    },
    /// Semantic (resolution / typing) error.
    Semantic {
        /// Human-readable description.
        message: String,
    },
}

impl DslError {
    /// Builds a semantic error from a message.
    pub fn semantic(message: impl Into<String>) -> DslError {
        DslError::Semantic {
            message: message.into(),
        }
    }
}

impl fmt::Display for DslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DslError::Lex { message, span } => {
                write!(f, "lex error at byte {}: {message}", span.start)
            }
            DslError::Parse { message, span } => {
                write!(f, "parse error at byte {}: {message}", span.start)
            }
            DslError::Semantic { message } => write!(f, "semantic error: {message}"),
        }
    }
}

impl Error for DslError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_counts_newlines() {
        let src = "ab\ncde\nf";
        let sp = Span { start: 5, end: 6 }; // the 'e'
        assert_eq!(sp.line_col(src), (2, 3));
    }

    #[test]
    fn display_is_informative() {
        let e = DslError::semantic("unknown schema `X`");
        assert_eq!(e.to_string(), "semantic error: unknown schema `X`");
        let e = DslError::Parse {
            message: "expected `;`".into(),
            span: Span { start: 4, end: 5 },
        };
        assert!(e.to_string().contains("byte 4"));
    }
}
