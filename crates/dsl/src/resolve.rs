//! Name resolution and type checking for database programs.
//!
//! [`check_program`] validates every well-formedness rule the rest of the
//! pipeline relies on: unique schema/field/transaction/label names, declared
//! primary keys, schema-correct commands, and type-correct expressions. On
//! success it returns a [`ProgramInfo`] with derived binding information.

use std::collections::HashMap;

use crate::ast::*;
use crate::error::DslError;

/// Derived static information about a checked program.
#[derive(Debug, Clone, Default)]
pub struct ProgramInfo {
    /// Maps `(transaction name, variable)` to the schema the variable's
    /// `SELECT` targets. A variable binds the same schema at every rebinding.
    pub var_schema: HashMap<(String, String), String>,
}

impl ProgramInfo {
    /// Schema bound to variable `var` in transaction `txn`, if any.
    pub fn schema_of(&self, txn: &str, var: &str) -> Option<&str> {
        self.var_schema
            .get(&(txn.to_owned(), var.to_owned()))
            .map(String::as_str)
    }
}

/// Checks a program and returns binding info.
///
/// # Errors
///
/// Returns [`DslError::Semantic`] describing the first violation found.
///
/// # Examples
///
/// ```
/// let p = atropos_dsl::parse(
///     "schema T { id: int key, v: int }
///      txn get(k: int) { x := select v from T where id = k; return x.v; }",
/// )?;
/// let info = atropos_dsl::check_program(&p)?;
/// assert_eq!(info.schema_of("get", "x"), Some("T"));
/// # Ok::<(), atropos_dsl::DslError>(())
/// ```
pub fn check_program(p: &Program) -> Result<ProgramInfo, DslError> {
    let mut info = ProgramInfo::default();

    // Schemas: unique names, unique fields, >=1 key field, no reserved names.
    let mut schema_names = HashMap::new();
    for s in &p.schemas {
        if schema_names.insert(s.name.clone(), ()).is_some() {
            return Err(DslError::semantic(format!("duplicate schema `{}`", s.name)));
        }
        let mut fields = HashMap::new();
        for f in &s.fields {
            if f.name == ALIVE_FIELD {
                return Err(DslError::semantic(format!(
                    "field name `{ALIVE_FIELD}` is reserved (schema `{}`)",
                    s.name
                )));
            }
            if fields.insert(f.name.clone(), ()).is_some() {
                return Err(DslError::semantic(format!(
                    "duplicate field `{}` in schema `{}`",
                    f.name, s.name
                )));
            }
        }
        if s.primary_key().is_empty() {
            return Err(DslError::semantic(format!(
                "schema `{}` has no primary-key field",
                s.name
            )));
        }
    }

    // Transactions: unique names; labels unique program-wide.
    let mut txn_names = HashMap::new();
    let mut labels: HashMap<CmdLabel, ()> = HashMap::new();
    for t in &p.transactions {
        if txn_names.insert(t.name.clone(), ()).is_some() {
            return Err(DslError::semantic(format!(
                "duplicate transaction `{}`",
                t.name
            )));
        }
        let mut params = HashMap::new();
        for prm in &t.params {
            if params.insert(prm.name.clone(), prm.ty).is_some() {
                return Err(DslError::semantic(format!(
                    "duplicate parameter `{}` in transaction `{}`",
                    prm.name, t.name
                )));
            }
        }
        let mut cx = Checker {
            program: p,
            txn: t,
            params,
            vars: HashMap::new(),
            iter_depth: 0,
        };
        cx.check_body(&t.body, &mut labels)?;
        let ret_ty = cx.type_of(&t.ret)?;
        let _ = ret_ty; // any scalar type may be returned
        for ((var, schema), _) in cx.vars.iter().map(|(v, s)| ((v.clone(), s.clone()), ())) {
            info.var_schema
                .insert((t.name.clone(), var), schema.schema.clone());
        }
    }
    Ok(info)
}

#[derive(Clone)]
struct VarBinding {
    schema: String,
    /// `None` = `*` (every declared field readable).
    fields: Option<Vec<String>>,
}

struct Checker<'a> {
    program: &'a Program,
    txn: &'a Transaction,
    params: HashMap<String, Ty>,
    vars: HashMap<String, VarBinding>,
    iter_depth: usize,
}

impl<'a> Checker<'a> {
    fn schema(&self, name: &str) -> Result<&'a Schema, DslError> {
        self.program.schema(name).ok_or_else(|| {
            DslError::semantic(format!(
                "unknown schema `{name}` in transaction `{}`",
                self.txn.name
            ))
        })
    }

    fn check_body(
        &mut self,
        body: &[Stmt],
        labels: &mut HashMap<CmdLabel, ()>,
    ) -> Result<(), DslError> {
        for s in body {
            if let Some(l) = s.label() {
                if labels.insert(l.clone(), ()).is_some() {
                    return Err(DslError::semantic(format!("duplicate command label `{l}`")));
                }
            }
            match s {
                Stmt::Select(c) => self.check_select(c)?,
                Stmt::Update(c) => self.check_update(c)?,
                Stmt::Insert(c) => self.check_insert(c)?,
                Stmt::Delete(c) => self.check_delete(c)?,
                Stmt::If { cond, body } => {
                    self.expect_ty(cond, Ty::Bool, "if guard")?;
                    self.check_body(body, labels)?;
                }
                Stmt::Iterate { count, body } => {
                    self.expect_ty(count, Ty::Int, "iterate count")?;
                    self.iter_depth += 1;
                    self.check_body(body, labels)?;
                    self.iter_depth -= 1;
                }
            }
        }
        Ok(())
    }

    fn check_where(&mut self, schema: &Schema, w: &Where) -> Result<(), DslError> {
        match w {
            Where::True => Ok(()),
            Where::Cmp { field, op, expr } => {
                let decl = schema.field(field).ok_or_else(|| {
                    DslError::semantic(format!(
                        "where clause references unknown field `{field}` of schema `{}`",
                        schema.name
                    ))
                })?;
                let ety = self.type_of(expr)?;
                if ety != decl.ty {
                    return Err(DslError::semantic(format!(
                        "where clause compares `{field}` ({}) with expression of type {ety}",
                        decl.ty
                    )));
                }
                if matches!(op, CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge)
                    && decl.ty != Ty::Int
                {
                    return Err(DslError::semantic(format!(
                        "ordering comparison on non-integer field `{field}`"
                    )));
                }
                Ok(())
            }
            Where::And(l, r) | Where::Or(l, r) => {
                self.check_where(schema, l)?;
                self.check_where(schema, r)
            }
        }
    }

    fn check_select(&mut self, c: &SelectCmd) -> Result<(), DslError> {
        let schema = self.schema(&c.schema)?;
        if let Some(fs) = &c.fields {
            for f in fs {
                if !schema.has_field(f) {
                    return Err(DslError::semantic(format!(
                        "select `{}` projects unknown field `{f}` of schema `{}`",
                        c.label, schema.name
                    )));
                }
            }
        }
        self.check_where(schema, &c.where_)?;
        if let Some(prev) = self.vars.get(&c.var) {
            if prev.schema != c.schema {
                return Err(DslError::semantic(format!(
                    "variable `{}` rebound to a different schema (`{}` then `{}`)",
                    c.var, prev.schema, c.schema
                )));
            }
        }
        self.vars.insert(
            c.var.clone(),
            VarBinding {
                schema: c.schema.clone(),
                fields: c.fields.clone(),
            },
        );
        Ok(())
    }

    fn check_update(&mut self, c: &UpdateCmd) -> Result<(), DslError> {
        let schema = self.schema(&c.schema)?;
        if c.assigns.is_empty() {
            return Err(DslError::semantic(format!(
                "update `{}` assigns no fields",
                c.label
            )));
        }
        let mut seen = HashMap::new();
        for (f, e) in &c.assigns {
            let decl = schema.field(f).ok_or_else(|| {
                DslError::semantic(format!(
                    "update `{}` assigns unknown field `{f}` of schema `{}`",
                    c.label, schema.name
                ))
            })?;
            if decl.primary_key {
                return Err(DslError::semantic(format!(
                    "update `{}` assigns primary-key field `{f}`",
                    c.label
                )));
            }
            if seen.insert(f.clone(), ()).is_some() {
                return Err(DslError::semantic(format!(
                    "update `{}` assigns field `{f}` twice",
                    c.label
                )));
            }
            self.expect_ty(e, decl.ty, &format!("assignment to `{f}`"))?;
        }
        self.check_where(schema, &c.where_)
    }

    fn check_insert(&mut self, c: &InsertCmd) -> Result<(), DslError> {
        let schema = self.schema(&c.schema)?;
        let mut seen = HashMap::new();
        for (f, e) in &c.values {
            let decl = schema.field(f).ok_or_else(|| {
                DslError::semantic(format!(
                    "insert `{}` sets unknown field `{f}` of schema `{}`",
                    c.label, schema.name
                ))
            })?;
            if seen.insert(f.clone(), ()).is_some() {
                return Err(DslError::semantic(format!(
                    "insert `{}` sets field `{f}` twice",
                    c.label
                )));
            }
            self.expect_ty(e, decl.ty, &format!("insert value for `{f}`"))?;
        }
        for k in schema.primary_key() {
            if !seen.contains_key(k) {
                return Err(DslError::semantic(format!(
                    "insert `{}` misses primary-key field `{k}` of schema `{}`",
                    c.label, schema.name
                )));
            }
        }
        Ok(())
    }

    fn check_delete(&mut self, c: &DeleteCmd) -> Result<(), DslError> {
        let schema = self.schema(&c.schema)?;
        self.check_where(schema, &c.where_)
    }

    fn expect_ty(&mut self, e: &Expr, want: Ty, what: &str) -> Result<(), DslError> {
        let got = self.type_of(e)?;
        if got != want {
            return Err(DslError::semantic(format!(
                "{what} has type {got}, expected {want} (in transaction `{}`)",
                self.txn.name
            )));
        }
        Ok(())
    }

    fn type_of(&mut self, e: &Expr) -> Result<Ty, DslError> {
        match e {
            Expr::Const(v) => Ok(v.ty()),
            Expr::Arg(a) => self.params.get(a).copied().ok_or_else(|| {
                DslError::semantic(format!(
                    "unknown argument `{a}` in transaction `{}`",
                    self.txn.name
                ))
            }),
            Expr::Bin(_, l, r) => {
                self.expect_ty(l, Ty::Int, "arithmetic operand")?;
                self.expect_ty(r, Ty::Int, "arithmetic operand")?;
                Ok(Ty::Int)
            }
            Expr::Cmp(op, l, r) => {
                let lt = self.type_of(l)?;
                let rt = self.type_of(r)?;
                if lt != rt {
                    return Err(DslError::semantic(format!(
                        "comparison between {lt} and {rt}"
                    )));
                }
                if matches!(op, CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge) && lt != Ty::Int {
                    return Err(DslError::semantic("ordering comparison on non-integers"));
                }
                Ok(Ty::Bool)
            }
            Expr::Bool(_, l, r) => {
                self.expect_ty(l, Ty::Bool, "boolean operand")?;
                self.expect_ty(r, Ty::Bool, "boolean operand")?;
                Ok(Ty::Bool)
            }
            Expr::Not(x) => {
                self.expect_ty(x, Ty::Bool, "negated expression")?;
                Ok(Ty::Bool)
            }
            Expr::Iter => {
                if self.iter_depth == 0 {
                    return Err(DslError::semantic(format!(
                        "`iter` used outside an iterate body in transaction `{}`",
                        self.txn.name
                    )));
                }
                Ok(Ty::Int)
            }
            Expr::Agg(op, var, field) => {
                let ty = self.field_access_ty(var, field)?;
                match op {
                    AggOp::Count => Ok(Ty::Int),
                    AggOp::Sum | AggOp::Min | AggOp::Max => {
                        if ty != Ty::Int {
                            return Err(DslError::semantic(format!(
                                "{}({var}.{field}) aggregates non-integer field",
                                op.name()
                            )));
                        }
                        Ok(Ty::Int)
                    }
                }
            }
            Expr::At(idx, var, field) => {
                self.expect_ty(idx, Ty::Int, "record index")?;
                self.field_access_ty(var, field)
            }
            Expr::Uuid => Ok(Ty::Uuid),
        }
    }

    fn field_access_ty(&self, var: &str, field: &str) -> Result<Ty, DslError> {
        let binding = self.vars.get(var).ok_or_else(|| {
            DslError::semantic(format!(
                "unknown variable `{var}` in transaction `{}`",
                self.txn.name
            ))
        })?;
        if let Some(fs) = &binding.fields {
            if !fs.iter().any(|f| f == field) {
                return Err(DslError::semantic(format!(
                    "variable `{var}` does not carry field `{field}` (selected: {fs:?})"
                )));
            }
        }
        let schema = self
            .program
            .schema(&binding.schema)
            .expect("binding schema checked at select");
        schema.field(field).map(|f| f.ty).ok_or_else(|| {
            DslError::semantic(format!(
                "schema `{}` has no field `{field}` (accessed via `{var}`)",
                binding.schema
            ))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn check(src: &str) -> Result<ProgramInfo, DslError> {
        check_program(&parse(src).unwrap())
    }

    #[test]
    fn accepts_valid_program() {
        let info = check(
            "schema T { id: int key, v: int }
             txn get(k: int) { x := select v from T where id = k; return x.v; }",
        )
        .unwrap();
        assert_eq!(info.schema_of("get", "x"), Some("T"));
        assert_eq!(info.schema_of("get", "y"), None);
    }

    #[test]
    fn rejects_duplicate_schema() {
        assert!(check("schema T { id: int key } schema T { id: int key } ").is_err());
    }

    #[test]
    fn rejects_schema_without_key() {
        assert!(check("schema T { v: int }").is_err());
    }

    #[test]
    fn rejects_reserved_alive_field() {
        assert!(check("schema T { alive: bool key }").is_err());
    }

    #[test]
    fn rejects_unknown_schema_in_command() {
        assert!(check(
            "schema T { id: int key }
             txn t() { x := select * from U; return 0; }"
        )
        .is_err());
    }

    #[test]
    fn rejects_update_of_primary_key() {
        assert!(check(
            "schema T { id: int key, v: int }
             txn t(k: int) { update T set id = k where id = k; return 0; }"
        )
        .is_err());
    }

    #[test]
    fn rejects_insert_missing_key() {
        assert!(check(
            "schema T { id: int key, v: int }
             txn t(k: int) { insert into T values (v = k); return 0; }"
        )
        .is_err());
    }

    #[test]
    fn rejects_type_mismatch_in_where() {
        assert!(check(
            "schema T { id: int key, v: bool }
             txn t(k: int) { x := select v from T where v = k; return 0; }"
        )
        .is_err());
    }

    #[test]
    fn rejects_ordering_on_strings() {
        assert!(check(
            "schema T { id: int key, s: string }
             txn t(n: string) { x := select s from T where s > n; return 0; }"
        )
        .is_err());
    }

    #[test]
    fn rejects_access_to_unselected_field() {
        assert!(check(
            "schema T { id: int key, v: int, w: int }
             txn t(k: int) { x := select v from T where id = k; return x.w; }"
        )
        .is_err());
    }

    #[test]
    fn star_select_allows_all_fields() {
        assert!(check(
            "schema T { id: int key, v: int, w: int }
             txn t(k: int) { x := select * from T where id = k; return x.w; }"
        )
        .is_ok());
    }

    #[test]
    fn rejects_iter_outside_loop() {
        assert!(check(
            "schema T { id: int key }
             txn t() { return iter; }"
        )
        .is_err());
    }

    #[test]
    fn iter_allowed_inside_loop() {
        assert!(check(
            "schema T { id: int key, v: int }
             txn t(n: int) {
                iterate (n) { update T set v = iter where id = iter; }
                return 0;
             }"
        )
        .is_ok());
    }

    #[test]
    fn rejects_duplicate_labels() {
        assert!(check(
            "schema T { id: int key, v: int }
             txn t(k: int) {
                @A update T set v = k where id = k;
                @A update T set v = k where id = k;
                return 0;
             }"
        )
        .is_err());
    }

    #[test]
    fn rejects_var_rebinding_to_other_schema() {
        assert!(check(
            "schema T { id: int key, v: int }
             schema U { id: int key, v: int }
             txn t(k: int) {
                x := select v from T where id = k;
                x := select v from U where id = k;
                return 0;
             }"
        )
        .is_err());
    }

    #[test]
    fn rejects_sum_of_bool_field() {
        assert!(check(
            "schema T { id: int key, b: bool }
             txn t() { x := select b from T; return sum(x.b); }"
        )
        .is_err());
    }

    #[test]
    fn count_of_any_field_is_int() {
        assert!(check(
            "schema T { id: int key, b: bool }
             txn t() { x := select b from T; return count(x.b); }"
        )
        .is_ok());
    }

    #[test]
    fn rejects_agg_in_if_guard_type_mismatch() {
        assert!(check(
            "schema T { id: int key, v: int }
             txn t(k: int) {
                x := select v from T where id = k;
                if (sum(x.v)) { update T set v = 0 where id = k; }
                return 0;
             }"
        )
        .is_err());
    }
}
