//! Abstract syntax for database programs (Fig. 5 of the paper).
//!
//! A [`Program`] is a set of [`Schema`] declarations plus a set of
//! [`Transaction`]s. Transaction bodies are sequences of database commands
//! (`SELECT`, `UPDATE`, `INSERT`, `DELETE`) and control commands
//! (`if`, `iterate`). `INSERT`/`DELETE` are first-class here but are modelled
//! semantically as writes to the implicit `alive` field, exactly as in §3 of
//! the paper.

use std::fmt;

/// A scalar value stored in a record field or produced by an expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// A 64-bit signed integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// An immutable string.
    Str(String),
    /// A unique identifier produced by `uuid()`.
    Uuid(u128),
}

impl Value {
    /// The [`Ty`] this value inhabits.
    pub fn ty(&self) -> Ty {
        match self {
            Value::Int(_) => Ty::Int,
            Value::Bool(_) => Ty::Bool,
            Value::Str(_) => Ty::Str,
            Value::Uuid(_) => Ty::Uuid,
        }
    }

    /// Returns the integer payload, if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// Returns the boolean payload, if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(n) => write!(f, "{n}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Uuid(u) => write!(f, "uuid:{u:x}"),
        }
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Int(n)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

/// The scalar types of the DSL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Ty {
    /// 64-bit signed integers.
    Int,
    /// Booleans.
    Bool,
    /// Strings.
    Str,
    /// Opaque unique identifiers.
    Uuid,
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Ty::Int => "int",
            Ty::Bool => "bool",
            Ty::Str => "string",
            Ty::Uuid => "uuid",
        };
        f.write_str(s)
    }
}

/// Arithmetic operators `⊕`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Integer division.
    Div,
}

impl BinOp {
    /// Concrete syntax for this operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        }
    }
}

/// Comparison operators `⊙`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Concrete syntax for this operator.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }

    /// Evaluates the comparison on two values (ordering comparisons are only
    /// meaningful on integers; other types support equality).
    pub fn eval(self, l: &Value, r: &Value) -> bool {
        match self {
            CmpOp::Eq => l == r,
            CmpOp::Ne => l != r,
            CmpOp::Lt => l < r,
            CmpOp::Le => l <= r,
            CmpOp::Gt => l > r,
            CmpOp::Ge => l >= r,
        }
    }
}

/// Boolean connectives `◦`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BoolOp {
    /// Conjunction.
    And,
    /// Disjunction.
    Or,
}

impl BoolOp {
    /// Concrete syntax for this operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BoolOp::And => "&&",
            BoolOp::Or => "||",
        }
    }
}

/// Program-level aggregation functions `agg ∈ {sum, min, max}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggOp {
    /// Sum of all values.
    Sum,
    /// Minimum value.
    Min,
    /// Maximum value.
    Max,
    /// Number of records (an extension used by some benchmarks).
    Count,
}

impl AggOp {
    /// Concrete syntax for this aggregator.
    pub fn name(self) -> &'static str {
        match self {
            AggOp::Sum => "sum",
            AggOp::Min => "min",
            AggOp::Max => "max",
            AggOp::Count => "count",
        }
    }
}

/// Expressions `e` (Fig. 5).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal constant `n`.
    Const(Value),
    /// A transaction argument `a`.
    Arg(String),
    /// Arithmetic `e ⊕ e`.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Comparison `e ⊙ e`.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Boolean connective `e ◦ e`.
    Bool(BoolOp, Box<Expr>, Box<Expr>),
    /// Boolean negation (a convenience extension).
    Not(Box<Expr>),
    /// The current iteration counter `iter`.
    Iter,
    /// `agg(x.f)` — aggregate field `f` over all records bound to `x`.
    Agg(AggOp, String, String),
    /// `at_e(x.f)` — field `f` of the `e`-th record bound to `x`
    /// (written `x.f` for index 0, `x.f[e]` otherwise).
    At(Box<Expr>, String, String),
    /// `uuid()` — a fresh unique identifier on every evaluation.
    Uuid,
}

impl Expr {
    /// Builds an integer literal.
    pub fn int(n: i64) -> Expr {
        Expr::Const(Value::Int(n))
    }

    /// Builds a boolean literal.
    pub fn boolean(b: bool) -> Expr {
        Expr::Const(Value::Bool(b))
    }

    /// Builds a reference to transaction argument `name`.
    pub fn arg(name: impl Into<String>) -> Expr {
        Expr::Arg(name.into())
    }

    /// Builds `x.f` (the field of the first record bound to `x`).
    pub fn field(var: impl Into<String>, field: impl Into<String>) -> Expr {
        Expr::At(Box::new(Expr::int(0)), var.into(), field.into())
    }

    /// Builds `sum(x.f)`.
    pub fn sum(var: impl Into<String>, field: impl Into<String>) -> Expr {
        Expr::Agg(AggOp::Sum, var.into(), field.into())
    }

    /// Builds `self + other`.
    pub fn add(self, other: Expr) -> Expr {
        Expr::Bin(BinOp::Add, Box::new(self), Box::new(other))
    }

    /// Builds `self - other`.
    pub fn sub(self, other: Expr) -> Expr {
        Expr::Bin(BinOp::Sub, Box::new(self), Box::new(other))
    }

    /// Builds `self = other`.
    pub fn eq(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Eq, Box::new(self), Box::new(other))
    }

    /// Builds `self && other`.
    pub fn and(self, other: Expr) -> Expr {
        Expr::Bool(BoolOp::And, Box::new(self), Box::new(other))
    }

    /// Builds `self >= other`.
    pub fn ge(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Ge, Box::new(self), Box::new(other))
    }

    /// Iterates over all sub-expressions (including `self`), pre-order.
    pub fn walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Bin(_, l, r) | Expr::Cmp(_, l, r) | Expr::Bool(_, l, r) => {
                l.walk(f);
                r.walk(f);
            }
            Expr::Not(e) => e.walk(f),
            Expr::At(idx, _, _) => idx.walk(f),
            Expr::Const(_) | Expr::Arg(_) | Expr::Iter | Expr::Agg(..) | Expr::Uuid => {}
        }
    }

    /// Collects every `(var, field)` access made by this expression.
    pub fn accesses(&self) -> Vec<(String, String)> {
        let mut out = Vec::new();
        self.walk(&mut |e| match e {
            Expr::Agg(_, v, f) | Expr::At(_, v, f) => out.push((v.clone(), f.clone())),
            _ => {}
        });
        out
    }

    /// True if the expression mentions variable `var`.
    pub fn uses_var(&self, var: &str) -> bool {
        let mut found = false;
        self.walk(&mut |e| match e {
            Expr::Agg(_, v, _) | Expr::At(_, v, _) if v == var => found = true,
            _ => {}
        });
        found
    }
}

/// An atomic `WHERE`-clause constraint `this.f ⊙ e` or a connective.
#[derive(Debug, Clone, PartialEq)]
pub enum Where {
    /// The always-true filter (selects every live record).
    True,
    /// `this.field ⊙ expr`.
    Cmp {
        /// Field of the target schema being constrained.
        field: String,
        /// Comparison operator.
        op: CmpOp,
        /// Right-hand expression (may not mention `this`).
        expr: Expr,
    },
    /// Conjunction of two filters.
    And(Box<Where>, Box<Where>),
    /// Disjunction of two filters.
    Or(Box<Where>, Box<Where>),
}

impl Where {
    /// Builds `this.field = expr`, the most common filter.
    pub fn eq(field: impl Into<String>, expr: Expr) -> Where {
        Where::Cmp {
            field: field.into(),
            op: CmpOp::Eq,
            expr,
        }
    }

    /// Conjunction helper.
    pub fn and(self, other: Where) -> Where {
        Where::And(Box::new(self), Box::new(other))
    }

    /// All fields of the target schema mentioned by the filter (`φ_fld`).
    pub fn fields(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_fields(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_fields(&self, out: &mut Vec<String>) {
        match self {
            Where::True => {}
            Where::Cmp { field, .. } => out.push(field.clone()),
            Where::And(l, r) | Where::Or(l, r) => {
                l.collect_fields(out);
                r.collect_fields(out);
            }
        }
    }

    /// The conjuncts of this filter if it is a pure conjunction of
    /// comparisons, or `None` if it contains `Or`.
    pub fn conjuncts(&self) -> Option<Vec<(&str, CmpOp, &Expr)>> {
        let mut out = Vec::new();
        if self.collect_conjuncts(&mut out) {
            Some(out)
        } else {
            None
        }
    }

    fn collect_conjuncts<'a>(&'a self, out: &mut Vec<(&'a str, CmpOp, &'a Expr)>) -> bool {
        match self {
            Where::True => true,
            Where::Cmp { field, op, expr } => {
                out.push((field.as_str(), *op, expr));
                true
            }
            Where::And(l, r) => l.collect_conjuncts(out) && r.collect_conjuncts(out),
            Where::Or(..) => false,
        }
    }

    /// Returns the expression equated with `field`, when this filter is
    /// *well-formed* in the sense of §4.2.1: a conjunction that contains an
    /// equality constraint on `field` (`φ[f]_exp`).
    pub fn eq_expr_for(&self, field: &str) -> Option<&Expr> {
        let conj = self.conjuncts()?;
        conj.iter()
            .find(|(f, op, _)| *f == field && *op == CmpOp::Eq)
            .map(|(_, _, e)| *e)
    }

    /// Iterates over all right-hand expressions in the filter.
    pub fn walk_exprs(&self, f: &mut impl FnMut(&Expr)) {
        match self {
            Where::True => {}
            Where::Cmp { expr, .. } => expr.walk(f),
            Where::And(l, r) | Where::Or(l, r) => {
                l.walk_exprs(f);
                r.walk_exprs(f);
            }
        }
    }

    /// True if the filter mentions variable `var` in any right-hand side.
    pub fn uses_var(&self, var: &str) -> bool {
        let mut found = false;
        self.walk_exprs(&mut |e| {
            if let Expr::Agg(_, v, _) | Expr::At(_, v, _) = e {
                if v == var {
                    found = true;
                }
            }
        });
        found
    }
}

/// Stable label of a database command (e.g. `S1`, `U4.2`). Labels are unique
/// within a [`Program`] and survive refactoring so anomalies can be tracked
/// across rewrites.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CmdLabel(pub String);

impl fmt::Display for CmdLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for CmdLabel {
    fn from(s: &str) -> Self {
        CmdLabel(s.to_owned())
    }
}

/// `x := SELECT f̄ FROM R WHERE φ`.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectCmd {
    /// Unique label.
    pub label: CmdLabel,
    /// Variable the result set is bound to.
    pub var: String,
    /// Selected fields; `None` means `*` (all fields).
    pub fields: Option<Vec<String>>,
    /// Target schema name.
    pub schema: String,
    /// Row filter.
    pub where_: Where,
}

/// `UPDATE R SET f̄ = ē WHERE φ`.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateCmd {
    /// Unique label.
    pub label: CmdLabel,
    /// Target schema name.
    pub schema: String,
    /// Parallel assignments to fields.
    pub assigns: Vec<(String, Expr)>,
    /// Row filter.
    pub where_: Where,
}

/// `INSERT INTO R VALUES (f̄ = ē)` — modelled as an atomic write that also
/// sets the implicit `alive` field to `true`.
#[derive(Debug, Clone, PartialEq)]
pub struct InsertCmd {
    /// Unique label.
    pub label: CmdLabel,
    /// Target schema name.
    pub schema: String,
    /// Field values; must cover every primary-key field.
    pub values: Vec<(String, Expr)>,
}

/// `DELETE FROM R WHERE φ` — modelled as a write of `alive = false`.
#[derive(Debug, Clone, PartialEq)]
pub struct DeleteCmd {
    /// Unique label.
    pub label: CmdLabel,
    /// Target schema name.
    pub schema: String,
    /// Row filter.
    pub where_: Where,
}

/// A statement: database command or control command.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// A `SELECT` binding.
    Select(SelectCmd),
    /// An `UPDATE`.
    Update(UpdateCmd),
    /// An `INSERT`.
    Insert(InsertCmd),
    /// A `DELETE`.
    Delete(DeleteCmd),
    /// `if (e) { c }`.
    If {
        /// Guard expression.
        cond: Expr,
        /// Guarded statements.
        body: Vec<Stmt>,
    },
    /// `iterate (e) { c }` — run the body `e` times.
    Iterate {
        /// Repetition count expression.
        count: Expr,
        /// Repeated statements.
        body: Vec<Stmt>,
    },
}

impl Stmt {
    /// The label of this statement's database command, if it is one.
    pub fn label(&self) -> Option<&CmdLabel> {
        match self {
            Stmt::Select(c) => Some(&c.label),
            Stmt::Update(c) => Some(&c.label),
            Stmt::Insert(c) => Some(&c.label),
            Stmt::Delete(c) => Some(&c.label),
            Stmt::If { .. } | Stmt::Iterate { .. } => None,
        }
    }

    /// The schema accessed by this statement's database command, if any.
    pub fn schema(&self) -> Option<&str> {
        match self {
            Stmt::Select(c) => Some(&c.schema),
            Stmt::Update(c) => Some(&c.schema),
            Stmt::Insert(c) => Some(&c.schema),
            Stmt::Delete(c) => Some(&c.schema),
            Stmt::If { .. } | Stmt::Iterate { .. } => None,
        }
    }
}

/// A named transaction `t(ā) { c; return e }`.
#[derive(Debug, Clone, PartialEq)]
pub struct Transaction {
    /// Transaction name (unique within a program).
    pub name: String,
    /// Formal parameters.
    pub params: Vec<Param>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Return expression.
    pub ret: Expr,
}

/// A formal transaction parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Declared type.
    pub ty: Ty,
}

/// A field declaration inside a schema.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldDecl {
    /// Field name (unique within the schema).
    pub name: String,
    /// Field type.
    pub ty: Ty,
    /// True if this field is part of the primary key.
    pub primary_key: bool,
}

impl FieldDecl {
    /// Builds a non-key field.
    pub fn new(name: impl Into<String>, ty: Ty) -> FieldDecl {
        FieldDecl {
            name: name.into(),
            ty,
            primary_key: false,
        }
    }

    /// Builds a primary-key field.
    pub fn key(name: impl Into<String>, ty: Ty) -> FieldDecl {
        FieldDecl {
            name: name.into(),
            ty,
            primary_key: true,
        }
    }
}

/// A database schema `ρ : f̄` with a designated primary key.
#[derive(Debug, Clone, PartialEq)]
pub struct Schema {
    /// Schema (table) name.
    pub name: String,
    /// Declared fields. The implicit `alive` field is *not* listed.
    pub fields: Vec<FieldDecl>,
}

impl Schema {
    /// Builds a schema from field declarations.
    pub fn new(name: impl Into<String>, fields: Vec<FieldDecl>) -> Schema {
        Schema {
            name: name.into(),
            fields,
        }
    }

    /// Names of the primary-key fields, in declaration order.
    pub fn primary_key(&self) -> Vec<&str> {
        self.fields
            .iter()
            .filter(|f| f.primary_key)
            .map(|f| f.name.as_str())
            .collect()
    }

    /// Names of the non-key fields, in declaration order.
    pub fn value_fields(&self) -> Vec<&str> {
        self.fields
            .iter()
            .filter(|f| !f.primary_key)
            .map(|f| f.name.as_str())
            .collect()
    }

    /// Looks up a field declaration by name.
    pub fn field(&self, name: &str) -> Option<&FieldDecl> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// True if `name` is a declared field of this schema.
    pub fn has_field(&self, name: &str) -> bool {
        self.field(name).is_some()
    }
}

/// A database program `P = (R̄, T̄)`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Schema declarations.
    pub schemas: Vec<Schema>,
    /// Transaction declarations.
    pub transactions: Vec<Transaction>,
}

impl Program {
    /// An empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// Looks up a schema by name.
    pub fn schema(&self, name: &str) -> Option<&Schema> {
        self.schemas.iter().find(|s| s.name == name)
    }

    /// Looks up a transaction by name.
    pub fn transaction(&self, name: &str) -> Option<&Transaction> {
        self.transactions.iter().find(|t| t.name == name)
    }

    /// Iterates over every database command in the program along with the
    /// name of the transaction containing it.
    pub fn commands(&self) -> Vec<(&str, &Stmt)> {
        let mut out = Vec::new();
        for t in &self.transactions {
            collect_commands(&t.body, &t.name, &mut out);
        }
        out
    }

    /// Finds the database command with the given label, returning the
    /// containing transaction name and the statement.
    pub fn command(&self, label: &CmdLabel) -> Option<(&str, &Stmt)> {
        self.commands()
            .into_iter()
            .find(|(_, s)| s.label() == Some(label))
    }

    /// Total number of database commands (not control statements).
    pub fn command_count(&self) -> usize {
        self.commands().len()
    }
}

fn collect_commands<'a>(body: &'a [Stmt], txn: &'a str, out: &mut Vec<(&'a str, &'a Stmt)>) {
    for s in body {
        match s {
            Stmt::If { body, .. } | Stmt::Iterate { body, .. } => {
                collect_commands(body, txn, out)
            }
            _ => out.push((txn, s)),
        }
    }
}

/// Name of the implicit liveness field carried by every schema (§3).
pub const ALIVE_FIELD: &str = "alive";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_ordering_and_types() {
        assert!(Value::Int(1) < Value::Int(2));
        assert_eq!(Value::Int(4).ty(), Ty::Int);
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Bool(true).as_int(), None);
    }

    #[test]
    fn cmp_op_eval() {
        assert!(CmpOp::Lt.eval(&Value::Int(1), &Value::Int(2)));
        assert!(CmpOp::Eq.eval(&Value::Str("a".into()), &Value::Str("a".into())));
        assert!(CmpOp::Ne.eval(&Value::Bool(true), &Value::Bool(false)));
        assert!(!CmpOp::Ge.eval(&Value::Int(1), &Value::Int(2)));
    }

    #[test]
    fn expr_accesses_collects_field_reads() {
        let e = Expr::field("x", "a").add(Expr::sum("y", "b"));
        let acc = e.accesses();
        assert_eq!(
            acc,
            vec![("x".to_owned(), "a".to_owned()), ("y".to_owned(), "b".to_owned())]
        );
        assert!(e.uses_var("x"));
        assert!(e.uses_var("y"));
        assert!(!e.uses_var("z"));
    }

    #[test]
    fn where_fields_and_conjuncts() {
        let w = Where::eq("a", Expr::int(1)).and(Where::Cmp {
            field: "b".into(),
            op: CmpOp::Gt,
            expr: Expr::int(0),
        });
        assert_eq!(w.fields(), vec!["a".to_owned(), "b".to_owned()]);
        let conj = w.conjuncts().unwrap();
        assert_eq!(conj.len(), 2);
        assert!(w.eq_expr_for("a").is_some());
        assert!(w.eq_expr_for("b").is_none()); // Gt, not Eq
    }

    #[test]
    fn where_or_is_not_conjunctive() {
        let w = Where::Or(
            Box::new(Where::eq("a", Expr::int(1))),
            Box::new(Where::eq("a", Expr::int(2))),
        );
        assert!(w.conjuncts().is_none());
        assert!(w.eq_expr_for("a").is_none());
    }

    #[test]
    fn schema_key_partition() {
        let s = Schema::new(
            "T",
            vec![
                FieldDecl::key("id", Ty::Int),
                FieldDecl::new("v", Ty::Str),
            ],
        );
        assert_eq!(s.primary_key(), vec!["id"]);
        assert_eq!(s.value_fields(), vec!["v"]);
        assert!(s.has_field("v"));
        assert!(!s.has_field("w"));
    }

    #[test]
    fn program_command_lookup() {
        let p = Program {
            schemas: vec![Schema::new("T", vec![FieldDecl::key("id", Ty::Int)])],
            transactions: vec![Transaction {
                name: "t".into(),
                params: vec![],
                body: vec![Stmt::If {
                    cond: Expr::boolean(true),
                    body: vec![Stmt::Select(SelectCmd {
                        label: "S1".into(),
                        var: "x".into(),
                        fields: None,
                        schema: "T".into(),
                        where_: Where::True,
                    })],
                }],
                ret: Expr::int(0),
            }],
        };
        assert_eq!(p.command_count(), 1);
        let (txn, stmt) = p.command(&"S1".into()).unwrap();
        assert_eq!(txn, "t");
        assert_eq!(stmt.schema(), Some("T"));
    }
}
