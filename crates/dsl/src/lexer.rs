//! Lexer for the textual database-program DSL.
//!
//! Produces a stream of [`Token`]s with byte offsets for error reporting.
//! Line comments (`//`) are skipped. Keywords are case-insensitive so the
//! SQL-ish fragments can be written in either case (`SELECT` / `select`).

use std::fmt;

use crate::error::{DslError, Span};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// An identifier or keyword candidate.
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A string literal (contents, unescaped).
    Str(String),
    /// `@label` command label.
    Label(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `.`
    Dot,
    /// `:=`
    Assign,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    StarTok,
    /// `/`
    Slash,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// End of input.
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "`{s}`"),
            Token::Int(n) => write!(f, "`{n}`"),
            Token::Str(s) => write!(f, "{s:?}"),
            Token::Label(s) => write!(f, "`@{s}`"),
            Token::LParen => f.write_str("`(`"),
            Token::RParen => f.write_str("`)`"),
            Token::LBrace => f.write_str("`{`"),
            Token::RBrace => f.write_str("`}`"),
            Token::LBracket => f.write_str("`[`"),
            Token::RBracket => f.write_str("`]`"),
            Token::Comma => f.write_str("`,`"),
            Token::Semi => f.write_str("`;`"),
            Token::Colon => f.write_str("`:`"),
            Token::Dot => f.write_str("`.`"),
            Token::Assign => f.write_str("`:=`"),
            Token::Eq => f.write_str("`=`"),
            Token::Ne => f.write_str("`!=`"),
            Token::Lt => f.write_str("`<`"),
            Token::Le => f.write_str("`<=`"),
            Token::Gt => f.write_str("`>`"),
            Token::Ge => f.write_str("`>=`"),
            Token::Plus => f.write_str("`+`"),
            Token::Minus => f.write_str("`-`"),
            Token::StarTok => f.write_str("`*`"),
            Token::Slash => f.write_str("`/`"),
            Token::AndAnd => f.write_str("`&&`"),
            Token::OrOr => f.write_str("`||`"),
            Token::Bang => f.write_str("`!`"),
            Token::Eof => f.write_str("end of input"),
        }
    }
}

/// A token paired with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Byte range in the source.
    pub span: Span,
}

/// Tokenizes `src` into a vector of spanned tokens terminated by [`Token::Eof`].
///
/// # Errors
///
/// Returns [`DslError::Lex`] on unterminated strings, malformed numbers, or
/// unexpected characters.
pub fn lex(src: &str) -> Result<Vec<Spanned>, DslError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
            }
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => push(&mut toks, Token::LParen, start, &mut i),
            ')' => push(&mut toks, Token::RParen, start, &mut i),
            '{' => push(&mut toks, Token::LBrace, start, &mut i),
            '}' => push(&mut toks, Token::RBrace, start, &mut i),
            '[' => push(&mut toks, Token::LBracket, start, &mut i),
            ']' => push(&mut toks, Token::RBracket, start, &mut i),
            ',' => push(&mut toks, Token::Comma, start, &mut i),
            ';' => push(&mut toks, Token::Semi, start, &mut i),
            '.' => push(&mut toks, Token::Dot, start, &mut i),
            '+' => push(&mut toks, Token::Plus, start, &mut i),
            '-' => push(&mut toks, Token::Minus, start, &mut i),
            '*' => push(&mut toks, Token::StarTok, start, &mut i),
            '/' => push(&mut toks, Token::Slash, start, &mut i),
            ':' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    toks.push(spanned(Token::Assign, start, i));
                } else {
                    push(&mut toks, Token::Colon, start, &mut i);
                }
            }
            '=' => push(&mut toks, Token::Eq, start, &mut i),
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    toks.push(spanned(Token::Ne, start, i));
                } else {
                    push(&mut toks, Token::Bang, start, &mut i);
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    toks.push(spanned(Token::Le, start, i));
                } else {
                    push(&mut toks, Token::Lt, start, &mut i);
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    toks.push(spanned(Token::Ge, start, i));
                } else {
                    push(&mut toks, Token::Gt, start, &mut i);
                }
            }
            '&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    i += 2;
                    toks.push(spanned(Token::AndAnd, start, i));
                } else {
                    return Err(lex_err("expected `&&`", start));
                }
            }
            '|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    i += 2;
                    toks.push(spanned(Token::OrOr, start, i));
                } else {
                    return Err(lex_err("expected `||`", start));
                }
            }
            '@' => {
                i += 1;
                let s = take_label(bytes, &mut i);
                // Labels are dot-separated ident segments; every segment must
                // be non-empty (rejects `@`, `@.L`, `@S1.`, `@S1..L`).
                if s.is_empty() || s.split('.').any(str::is_empty) {
                    return Err(lex_err("expected label name after `@`", start));
                }
                toks.push(spanned(Token::Label(s), start, i));
            }
            '"' => {
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => return Err(lex_err("unterminated string literal", start)),
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(b'\\') => {
                            match bytes.get(i + 1) {
                                Some(b'n') => s.push('\n'),
                                Some(b't') => s.push('\t'),
                                Some(b'"') => s.push('"'),
                                Some(b'\\') => s.push('\\'),
                                _ => return Err(lex_err("invalid escape sequence", i)),
                            }
                            i += 2;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                toks.push(spanned(Token::Str(s), start, i));
            }
            _ if c.is_ascii_digit() => {
                let mut n: i64 = 0;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    n = n
                        .checked_mul(10)
                        .and_then(|m| m.checked_add((bytes[i] - b'0') as i64))
                        .ok_or_else(|| lex_err("integer literal overflows i64", start))?;
                    i += 1;
                }
                toks.push(spanned(Token::Int(n), start, i));
            }
            _ if c.is_ascii_alphabetic() || c == '_' => {
                let s = take_ident(bytes, &mut i);
                toks.push(spanned(Token::Ident(s), start, i));
            }
            _ => return Err(lex_err(&format!("unexpected character `{c}`"), start)),
        }
    }
    toks.push(spanned(Token::Eof, src.len(), src.len()));
    Ok(toks)
}

fn take_while_bytes(bytes: &[u8], i: &mut usize, accept: impl Fn(u8) -> bool) -> String {
    let start = *i;
    while *i < bytes.len() && accept(bytes[*i]) {
        *i += 1;
    }
    String::from_utf8_lossy(&bytes[start..*i]).into_owned()
}

fn take_ident(bytes: &[u8], i: &mut usize) -> String {
    take_while_bytes(bytes, i, |b| b.is_ascii_alphanumeric() || b == b'_')
}

/// Like [`take_ident`], but also accepts `.`: labels follow the grammar
/// `segment ("." segment)*` with non-empty `[A-Za-z0-9_]+` segments (see
/// the crate docs). The dot-suffix namespace is reserved for the repair
/// engine, which derives `@S1.1`/`@S1.2` for split commands and `@S1.L`
/// for logging rewrites; such labels must survive a print/parse round
/// trip. Segment validation happens at the call site in [`lex`].
fn take_label(bytes: &[u8], i: &mut usize) -> String {
    take_while_bytes(bytes, i, |b| b.is_ascii_alphanumeric() || b == b'_' || b == b'.')
}

fn push(toks: &mut Vec<Spanned>, t: Token, start: usize, i: &mut usize) {
    *i += 1;
    toks.push(spanned(t, start, *i));
}

fn spanned(token: Token, start: usize, end: usize) -> Spanned {
    Spanned {
        token,
        span: Span { start, end },
    }
}

fn lex_err(msg: &str, at: usize) -> DslError {
    DslError::Lex {
        message: msg.to_owned(),
        span: Span {
            start: at,
            end: at + 1,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn lexes_punctuation_and_operators() {
        assert_eq!(
            kinds(":= <= >= != && || = < > + - * / ! . , ; : ( ) { } [ ]"),
            vec![
                Token::Assign,
                Token::Le,
                Token::Ge,
                Token::Ne,
                Token::AndAnd,
                Token::OrOr,
                Token::Eq,
                Token::Lt,
                Token::Gt,
                Token::Plus,
                Token::Minus,
                Token::StarTok,
                Token::Slash,
                Token::Bang,
                Token::Dot,
                Token::Comma,
                Token::Semi,
                Token::Colon,
                Token::LParen,
                Token::RParen,
                Token::LBrace,
                Token::RBrace,
                Token::LBracket,
                Token::RBracket,
                Token::Eof,
            ]
        );
    }

    #[test]
    fn lexes_idents_numbers_strings_labels() {
        assert_eq!(
            kinds(r#"txn x1 42 "hi\n" @U4_2"#),
            vec![
                Token::Ident("txn".into()),
                Token::Ident("x1".into()),
                Token::Int(42),
                Token::Str("hi\n".into()),
                Token::Label("U4_2".into()),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn skips_comments() {
        assert_eq!(
            kinds("a // comment until eol\nb"),
            vec![Token::Ident("a".into()), Token::Ident("b".into()), Token::Eof]
        );
    }

    #[test]
    fn accepts_repair_derived_dotted_labels() {
        assert_eq!(
            kinds("@S1.L @S1.1 @U4.2.L"),
            vec![
                Token::Label("S1.L".into()),
                Token::Label("S1.1".into()),
                Token::Label("U4.2.L".into()),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn rejects_labels_with_empty_segments() {
        // Every dot-separated segment of a label must be non-empty.
        for bad in ["@", "@.L", "@S1.", "@S1..L", "@.", "@.."] {
            assert!(lex(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(lex("\"abc").is_err());
    }

    #[test]
    fn rejects_single_ampersand() {
        assert!(lex("a & b").is_err());
    }

    #[test]
    fn rejects_integer_overflow() {
        assert!(lex("99999999999999999999999999").is_err());
    }

    #[test]
    fn spans_point_into_source() {
        let toks = lex("ab cd").unwrap();
        assert_eq!(toks[1].span, Span { start: 3, end: 5 });
    }
}
