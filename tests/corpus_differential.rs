//! Corpus-service differential: over **all nine workloads plus Relay**,
//! the per-program verdicts `CorpusService` answers from one global
//! fingerprint-deduped plan must be byte-identical to running each
//! program through an isolated per-program detection — in pair mode and
//! triple mode, at 1, 2, and 8 engine threads. The batch service is an
//! optimization (solve each unique transaction shape once across the
//! fleet), never a different oracle; this suite pins that contract.

use atropos::detect::{
    analyse_corpus, ConsistencyLevel, DetectMode, DetectSession, DetectionEngine,
};
use atropos::workloads::{all_benchmarks, chain_scenarios};
use atropos_dsl::Program;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// The full corpus: Table 1's nine workloads plus the Relay chain
/// scenario, in registry order.
fn corpus() -> Vec<(String, Program)> {
    all_benchmarks()
        .into_iter()
        .chain(chain_scenarios())
        .map(|b| (b.name.to_string(), b.program))
        .collect()
}

/// One isolated reference run per program: a fresh session each, so no
/// verdict can leak between programs.
fn isolated(
    programs: &[(String, Program)],
    level: ConsistencyLevel,
    mode: DetectMode,
    threads: usize,
) -> Vec<String> {
    let engine = DetectionEngine::new(threads);
    programs
        .iter()
        .map(|(_, p)| {
            let mut session = DetectSession::new();
            let (verdicts, _) = engine.detect_with_mode(p, level, mode, &mut session);
            format!("{verdicts:?}")
        })
        .collect()
}

fn assert_corpus_matches_isolation(level: ConsistencyLevel, mode: DetectMode) {
    let programs = corpus();
    let mut reference: Option<Vec<String>> = None;
    for threads in THREAD_COUNTS {
        let engine = DetectionEngine::new(threads);
        let mut session = DetectSession::new();
        let (verdicts, stats) = analyse_corpus(&engine, &programs, level, mode, &mut session);
        assert_eq!(verdicts.len(), programs.len());
        assert!(
            stats.unique_pairs <= stats.pair_slots,
            "dedup can only shrink the plan: {stats:?}"
        );
        let rendered: Vec<String> = verdicts
            .iter()
            .map(|v| format!("{:?}", v.verdicts))
            .collect();

        // Corpus ≡ isolation, program by program, at this thread count.
        let iso = isolated(&programs, level, mode, threads);
        for ((name, _), (got, want)) in programs.iter().zip(rendered.iter().zip(&iso)) {
            assert_eq!(got, want, "{name} at {threads} threads ({level:?}, {mode:?})");
        }
        // Every per-program answer replays from the global store.
        for v in &verdicts {
            assert_eq!(
                v.stats.queries, 0,
                "{}: answering pass must be all hits",
                v.name
            );
        }
        // And thread count never changes the corpus result.
        match &reference {
            None => reference = Some(rendered),
            Some(r) => assert_eq!(r, &rendered, "{threads} threads diverged"),
        }
    }
}

#[test]
fn corpus_matches_isolation_pairs_ec() {
    assert_corpus_matches_isolation(
        ConsistencyLevel::EventualConsistency,
        DetectMode::Pairs,
    );
}

#[test]
fn corpus_matches_isolation_pairs_cc() {
    assert_corpus_matches_isolation(ConsistencyLevel::CausalConsistency, DetectMode::Pairs);
}

#[test]
fn corpus_matches_isolation_triples_ec() {
    assert_corpus_matches_isolation(
        ConsistencyLevel::EventualConsistency,
        DetectMode::Triples,
    );
}

/// A duplicated corpus (every program four times) must answer every copy
/// identically while solving no more unique keys than the deduplicated
/// corpus — the fleet-scale speedup is exactly this collapse.
#[test]
fn duplicated_corpus_dedups_and_answers_all_copies() {
    let base = corpus();
    let ec = ConsistencyLevel::EventualConsistency;
    let engine = DetectionEngine::new(2);

    let mut session = DetectSession::new();
    let (_, base_stats) = analyse_corpus(&engine, &base, ec, DetectMode::Pairs, &mut session);

    let dup: Vec<(String, Program)> = (0..4)
        .flat_map(|i| {
            base.iter()
                .map(move |(n, p)| (format!("{n}#{i}"), p.clone()))
        })
        .collect();
    let mut dup_session = DetectSession::new();
    let (verdicts, dup_stats) =
        analyse_corpus(&engine, &dup, ec, DetectMode::Pairs, &mut dup_session);

    assert_eq!(dup_stats.pair_slots, 4 * base_stats.pair_slots);
    assert_eq!(
        dup_stats.unique_pairs, base_stats.unique_pairs,
        "duplicates add no solver work"
    );
    for (i, v) in verdicts.iter().enumerate() {
        let twin = &verdicts[i % base.len()];
        assert_eq!(
            format!("{:?}", v.verdicts),
            format!("{:?}", twin.verdicts),
            "{} must answer like {}",
            v.name,
            twin.name
        );
    }
}
