//! CLOTHO-style differential harness for the repair loop's oracle surgery:
//! on **all nine workloads × the default configuration × every rule
//! ablation**, the near-incremental verdict-cached driver
//! ([`atropos_core::repair_with_config`]) must produce exactly the same
//! repair as the from-scratch Fig. 10 reference
//! ([`atropos_core::repair_with_config_scratch`]) — same `steps` in the
//! same order, the same `remaining` anomalies, the same value
//! correspondences, the same `repair_ratio()`, and a byte-identical
//! repaired program.
//!
//! This is the repair-level sibling of `tests/incremental_vs_fresh.rs`: the
//! detection-level suite proves the assumption-based pair solvers equal the
//! fresh solvers on one program, while this suite proves the pair-verdict
//! cache equals re-running the full oracle across a whole *sequence* of
//! refactored programs.

use atropos::repair::{repair_with_config, repair_with_config_scratch, RepairConfig};
use atropos::workloads::benchmark;
use atropos_dsl::print_program;

fn assert_equivalent(workload: &str) {
    let b = benchmark(workload).expect("registered benchmark");
    let mut some_reuse = false;
    // The canonical rule-ablation sweep ([`RepairConfig::ablations`]),
    // shared with `atropos_core::ablation_sweep` and the benchmark bins.
    for (config_name, config) in RepairConfig::ablations() {
        let cached = repair_with_config(&b.program, &config);
        let scratch = repair_with_config_scratch(&b.program, &config);
        let ctx = format!("{workload} [{config_name}]");
        assert_eq!(cached.initial, scratch.initial, "{ctx}: initial anomalies");
        assert_eq!(cached.steps, scratch.steps, "{ctx}: applied steps");
        assert_eq!(cached.remaining, scratch.remaining, "{ctx}: remaining anomalies");
        assert_eq!(cached.vcs, scratch.vcs, "{ctx}: value correspondences");
        assert_eq!(cached.post, scratch.post, "{ctx}: post-processing report");
        assert!(
            (cached.repair_ratio() - scratch.repair_ratio()).abs() < 1e-12,
            "{ctx}: repair ratio {} vs {}",
            cached.repair_ratio(),
            scratch.repair_ratio()
        );
        assert_eq!(
            print_program(&cached.repaired),
            print_program(&scratch.repaired),
            "{ctx}: repaired programs diverge"
        );
        // The scratch reference must never touch a cache…
        assert_eq!(scratch.stats.pairs_reused(), 0, "{ctx}");
        assert_eq!(scratch.stats.detections_skipped, 0, "{ctx}");
        some_reuse |= cached.stats.pairs_reused() > 0 || cached.stats.detections_skipped > 0;
    }
    // …while across the ablation sweep the cached driver must actually have
    // reused oracle work somewhere, or the harness proves nothing.
    assert!(some_reuse, "{workload}: cached driver never reused a verdict");
}

macro_rules! differential {
    ($($test:ident => $name:literal),+ $(,)?) => {$(
        #[test]
        fn $test() {
            assert_equivalent($name);
        }
    )+};
}

// One test per workload so the suite parallelizes across test threads.
differential! {
    tpcc_matches_scratch_under_all_ablations => "TPC-C",
    seats_matches_scratch_under_all_ablations => "SEATS",
    courseware_matches_scratch_under_all_ablations => "Courseware",
    smallbank_matches_scratch_under_all_ablations => "SmallBank",
    twitter_matches_scratch_under_all_ablations => "Twitter",
    fmke_matches_scratch_under_all_ablations => "FMKe",
    sibench_matches_scratch_under_all_ablations => "SIBench",
    wikipedia_matches_scratch_under_all_ablations => "Wikipedia",
    killrchat_matches_scratch_under_all_ablations => "Killrchat",
}
