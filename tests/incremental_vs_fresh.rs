//! CLOTHO-style differential harness for the detector's solver surgery:
//! for **all nine workloads × all four consistency levels × every anomaly
//! pattern**, the incremental per-pair assumption-based path must return
//! exactly the same SAT/UNSAT verdict as a freshly constructed solver per
//! query — and consequently the same witness anomaly sets.

use atropos::detect::{
    detect_anomalies, detect_anomalies_fresh, detect_differential, ConsistencyLevel,
};
use atropos::workloads::all_benchmarks;

/// Every query of every workload, checked verdict-by-verdict: the
/// differential runner answers each memoized pattern query on *both*
/// paths and records any disagreement.
#[test]
fn every_query_agrees_on_all_nine_workloads() {
    for b in all_benchmarks() {
        let report = detect_differential(&b.program, &ConsistencyLevel::ALL);
        assert!(
            report.mismatches.is_empty(),
            "{}: incremental vs fresh verdicts diverged:\n{}",
            b.name,
            report.mismatches.join("\n")
        );
        assert!(report.stats.queries > 0, "{}: no queries issued", b.name);
        // The shared per-pair encoding must actually be reused: the fresh
        // path would have re-encoded strictly more clauses.
        assert!(
            report.stats.clauses_encoded < report.stats.clauses_fresh_equivalent,
            "{}: no encoding reuse: {:?}",
            b.name,
            report.stats
        );
    }
}

/// End-to-end witness equality: the production (incremental) oracle and
/// the fresh reference oracle report identical anomaly lists — same
/// pairs, same kinds, same fields, same counts — at every level.
#[test]
fn anomaly_sets_are_identical_on_all_nine_workloads() {
    for b in all_benchmarks() {
        for level in ConsistencyLevel::ALL {
            let incremental = detect_anomalies(&b.program, level);
            let (fresh, _) = detect_anomalies_fresh(&b.program, level);
            assert_eq!(
                incremental, fresh,
                "{} @ {level}: witness anomaly sets diverged",
                b.name
            );
        }
    }
}
