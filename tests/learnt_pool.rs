//! Learnt-pool sharing across fingerprint-identical solvers: a
//! `DetectionEngine` keeps a deterministic pool of root-level lemmas,
//! published once per canonical `(fingerprint, fingerprint, level)` key at
//! the serial merge point. A later pass over the same corpus through the
//! *same* engine (fresh session, so every solver is rebuilt) must seed its
//! fresh solvers from that pool — observable as `learnt_seeded > 0` —
//! without changing a single verdict. With the pool disabled the counter
//! stays at zero and the verdicts are again identical: seeding is an
//! effort transfer, never a different oracle.

use atropos::detect::{
    analyse_corpus, ConsistencyLevel, DetectMode, DetectSession, DetectionEngine,
};
use atropos::workloads::{all_benchmarks, chain_scenarios};
use atropos_dsl::Program;

/// The nine Table 1 workloads plus the chain scenarios, duplicated four
/// times under distinct names — every copy beyond the first is pure
/// fingerprint-duplicate load.
fn duplicated_corpus() -> Vec<(String, Program)> {
    let base: Vec<(String, Program)> = all_benchmarks()
        .into_iter()
        .chain(chain_scenarios())
        .map(|b| (b.name.to_string(), b.program))
        .collect();
    let mut corpus = Vec::with_capacity(base.len() * 4);
    for copy in 0..4 {
        for (name, p) in &base {
            corpus.push((format!("{name}#{copy}"), p.clone()));
        }
    }
    corpus
}

fn rendered_verdicts(
    engine: &DetectionEngine,
    programs: &[(String, Program)],
    level: ConsistencyLevel,
    mode: DetectMode,
) -> (Vec<String>, u64) {
    let mut session = DetectSession::new();
    let (verdicts, stats) = analyse_corpus(engine, programs, level, mode, &mut session);
    let rendered = verdicts
        .iter()
        .map(|v| format!("{:?}", v.verdicts))
        .collect();
    (rendered, stats.solve.learnt_seeded)
}

fn assert_pool_seeds_and_preserves_verdicts(level: ConsistencyLevel, mode: DetectMode) {
    let programs = duplicated_corpus();

    // Pool on (the default): the first pass populates the pool, the second
    // pass rebuilds every solver in a fresh session and must seed.
    let engine = DetectionEngine::new(2);
    assert!(engine.learnt_pool().is_some(), "pool is on by default");
    let (base, first_seeded) = rendered_verdicts(&engine, &programs, level, mode);
    let pool = engine.learnt_pool().expect("pool is on by default");
    assert!(
        pool.published() > 0,
        "{level:?}/{mode:?}: first pass published no lemma sets"
    );
    assert!(
        pool.published_clauses() > 0,
        "{level:?}/{mode:?}: first pass published empty lemma sets"
    );
    let (second, second_seeded) = rendered_verdicts(&engine, &programs, level, mode);
    assert!(
        second_seeded > 0,
        "{level:?}/{mode:?}: second pass rebuilt every solver but seeded nothing \
         (first pass seeded {first_seeded}, pool holds {} clauses)",
        pool.published_clauses()
    );
    assert_eq!(
        base, second,
        "{level:?}/{mode:?}: seeding changed a verdict"
    );

    // Pool off: same corpus, same passes, zero seeding, same verdicts.
    let engine_off = DetectionEngine::new(2).with_learnt_pool(false);
    assert!(engine_off.learnt_pool().is_none());
    let (off_base, off_first) = rendered_verdicts(&engine_off, &programs, level, mode);
    let (off_second, off_second_seeded) = rendered_verdicts(&engine_off, &programs, level, mode);
    assert_eq!(off_first, 0, "{level:?}/{mode:?}: pool off but seeded");
    assert_eq!(
        off_second_seeded, 0,
        "{level:?}/{mode:?}: pool off but second pass seeded"
    );
    assert_eq!(off_base, off_second);
    assert_eq!(
        base, off_base,
        "{level:?}/{mode:?}: pool on/off disagree on verdicts"
    );
}

#[test]
fn pool_seeds_duplicated_corpus_pairs_ec() {
    assert_pool_seeds_and_preserves_verdicts(
        ConsistencyLevel::EventualConsistency,
        DetectMode::Pairs,
    );
}

#[test]
fn pool_seeds_duplicated_corpus_triples_causal() {
    assert_pool_seeds_and_preserves_verdicts(
        ConsistencyLevel::CausalConsistency,
        DetectMode::Triples,
    );
}
