//! Thread-count determinism harness for the parallel detection engine: on
//! **all nine workloads**, running detection and the whole engine-driven
//! repair — in the default pair mode *and* the bounded three-instance
//! triple mode — at 1, 2, and 8 worker threads must produce byte-identical
//! verdicts, byte-identical repaired programs, byte-identical decoded
//! witness schedules, and identical `RepairStats` (modulo wall-clock
//! seconds, the one field that legitimately varies).
//!
//! Determinism is by construction — pair solving is per-pair independent
//! and the engine merges outcomes in the serial pair order, not completion
//! order — and this suite pins that construction against regressions
//! (e.g. a completion-order fold or a worker-dependent stat). The serial
//! 1-thread run doubles as the ground truth: it is exactly the PR 3
//! cached driver, itself proven equal to the from-scratch Fig. 10
//! reference by `tests/repair_incremental_vs_scratch.rs`.

use atropos::detect::{
    decode_witness, detect_anomalies, ConsistencyLevel, DetectMode, DetectSession,
    DetectionEngine,
};
use atropos::repair::{repair_with_engine, RepairConfig, RepairReport, RepairStats};
use atropos::workloads::benchmark;
use atropos_dsl::print_program;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// `RepairStats` rendered with every wall-clock field zeroed: the
/// byte-comparable projection two runs must agree on.
fn stats_fingerprint(stats: &RepairStats) -> String {
    let mut s = stats.clone();
    for it in &mut s.iterations {
        it.seconds = 0.0;
    }
    format!("{s:?}")
}

fn assert_thread_count_invariant(workload: &str) {
    let b = benchmark(workload).expect("registered benchmark");
    let config = RepairConfig::default();
    let mut reference: Option<(Vec<String>, RepairReport)> = None;
    for threads in THREAD_COUNTS {
        let engine = DetectionEngine::new(threads);
        assert_eq!(engine.threads(), threads);

        // Raw detection: byte-identical verdicts at every level.
        let mut session = DetectSession::new();
        for level in ConsistencyLevel::ALL {
            let (got, _) = engine.detect(&b.program, level, &mut session);
            assert_eq!(
                format!("{got:?}"),
                format!("{:?}", detect_anomalies(&b.program, level)),
                "{workload} @ {level} with {threads} threads: verdicts diverged"
            );
        }

        // Whole repair run: identical verdicts, program, steps, and stats.
        let mut session = DetectSession::new();
        let report = repair_with_engine(&b.program, &config, &engine, &mut session);
        // And the same invariant for the triple-mode repair loop: the
        // engine's triple phase merges in the serial triple order, so the
        // chain verdicts (and everything downstream) are equally
        // thread-count blind.
        let triple_config = RepairConfig {
            mode: DetectMode::Triples,
            ..RepairConfig::default()
        };
        let mut triple_session = DetectSession::new();
        let triple_report =
            repair_with_engine(&b.program, &triple_config, &engine, &mut triple_session);
        // Witness replay rides the same invariant: every initial verdict
        // must decode to a byte-identical concrete schedule regardless of
        // how many workers produced the verdict (the decoder re-solves on
        // a fresh deterministic solver, so this pins both ends). The
        // triple-mode projection covers the chain kinds.
        let schedules: Vec<String> = report
            .initial
            .iter()
            .chain(&triple_report.initial)
            .map(|v| format!("{:?}", decode_witness(&b.program, v, config.level)))
            .collect();
        let projection = vec![
            format!("{schedules:?}"),
            format!("{:?}", report.initial),
            format!("{:?}", report.remaining),
            format!("{:?}", report.steps),
            format!("{:?}", report.vcs),
            format!("{:?}", report.post),
            print_program(&report.repaired),
            stats_fingerprint(&report.stats),
            format!("{:?}", triple_report.initial),
            format!("{:?}", triple_report.remaining),
            format!("{:?}", triple_report.steps),
            format!("{:?}", triple_report.vcs),
            print_program(&triple_report.repaired),
            stats_fingerprint(&triple_report.stats),
        ];
        match &reference {
            None => reference = Some((projection, report)),
            Some((expected, _)) => {
                let fields = [
                    "decoded witness schedules",
                    "initial anomalies",
                    "remaining anomalies",
                    "steps",
                    "value correspondences",
                    "post-processing",
                    "repaired program",
                    "repair stats",
                    "triple-mode initial anomalies",
                    "triple-mode remaining anomalies",
                    "triple-mode steps",
                    "triple-mode value correspondences",
                    "triple-mode repaired program",
                    "triple-mode repair stats",
                ];
                for ((exp, got), field) in expected.iter().zip(&projection).zip(fields) {
                    assert_eq!(
                        exp, got,
                        "{workload}: {field} diverged at {threads} threads"
                    );
                }
            }
        }
    }
}

macro_rules! deterministic {
    ($($test:ident => $name:literal),+ $(,)?) => {$(
        #[test]
        fn $test() {
            assert_thread_count_invariant($name);
        }
    )+};
}

// One test per workload so the suite parallelizes across test threads.
deterministic! {
    tpcc_is_thread_count_invariant => "TPC-C",
    seats_is_thread_count_invariant => "SEATS",
    courseware_is_thread_count_invariant => "Courseware",
    smallbank_is_thread_count_invariant => "SmallBank",
    twitter_is_thread_count_invariant => "Twitter",
    fmke_is_thread_count_invariant => "FMKe",
    sibench_is_thread_count_invariant => "SIBench",
    wikipedia_is_thread_count_invariant => "Wikipedia",
    killrchat_is_thread_count_invariant => "Killrchat",
}
