//! End-to-end integration tests: parse → detect → repair → re-detect over
//! the real benchmarks, mirroring the paper's headline claims.

use atropos::prelude::*;
use atropos::workloads::all_benchmarks;

#[test]
fn every_benchmark_repairs_without_regressions() {
    for b in all_benchmarks() {
        let report = repair_program(&b.program, ConsistencyLevel::EventualConsistency);
        assert!(
            report.remaining.len() <= report.initial.len(),
            "{}: repair must never add anomalies ({} -> {})",
            b.name,
            report.initial.len(),
            report.remaining.len()
        );
        // The repaired program is still a well-formed program.
        check_program(&report.repaired)
            .unwrap_or_else(|e| panic!("{}: repaired program ill-typed: {e}", b.name));
        // Transaction names survive refactoring (clients keep their API).
        for t in &b.program.transactions {
            assert!(
                report.repaired.transaction(&t.name).is_some(),
                "{}: transaction {} disappeared",
                b.name,
                t.name
            );
        }
    }
}

#[test]
fn at_least_half_of_all_anomalies_are_repaired() {
    // §7.1: "Atropos was able to repair at least half the anomalies" per
    // benchmark, and 74% on average. We check the aggregate claim.
    let (mut total, mut fixed) = (0usize, 0usize);
    for b in all_benchmarks() {
        let report = repair_program(&b.program, ConsistencyLevel::EventualConsistency);
        total += report.initial.len();
        fixed += report.initial.len() - report.remaining.len();
    }
    assert!(total > 0);
    let ratio = fixed as f64 / total as f64;
    assert!(ratio >= 0.5, "only {:.0}% of anomalies repaired", ratio * 100.0);
}

#[test]
fn serializable_marking_silences_the_remaining_anomalies() {
    // The AT-SC configuration is provably safe: marking the still-anomalous
    // transactions serializable leaves nothing behind.
    for b in all_benchmarks() {
        let report = repair_program(&b.program, ConsistencyLevel::EventualConsistency);
        let marked = report.unsafe_transactions();
        let residual = atropos::detect::detect_anomalies_marked(
            &report.repaired,
            ConsistencyLevel::EventualConsistency,
            &marked,
        );
        let still: Vec<_> = residual
            .iter()
            .filter(|p| marked.contains(&p.txn1) && marked.contains(&p.txn2))
            .collect();
        assert!(
            still.is_empty(),
            "{}: SC-marked transactions still anomalous: {still:?}",
            b.name
        );
    }
}

#[test]
fn stronger_isolation_levels_differentiate() {
    use atropos::detect::detect_anomalies_at_levels;
    // RR ≤ EC and CC ≤ EC everywhere; SC is anomaly-free; and the levels
    // genuinely differ — CC must count *strictly fewer* anomalies than EC
    // on at least one benchmark (the causal session axioms prune
    // non-monotonic reads; Table 1's CC column must not collapse into EC).
    let mut cc_strictly_below_ec = 0usize;
    for b in all_benchmarks() {
        let (by_level, _) = detect_anomalies_at_levels(&b.program, &ConsistencyLevel::ALL);
        let ec = by_level[&ConsistencyLevel::EventualConsistency].len();
        let cc = by_level[&ConsistencyLevel::CausalConsistency].len();
        let rr = by_level[&ConsistencyLevel::RepeatableRead].len();
        let sc = by_level[&ConsistencyLevel::Serializable].len();
        assert!(cc <= ec, "{}: CC {} > EC {}", b.name, cc, ec);
        assert!(rr <= ec, "{}: RR {} > EC {}", b.name, rr, ec);
        assert_eq!(sc, 0, "{}: serializability must be anomaly-free", b.name);
        cc_strictly_below_ec += usize::from(cc < ec);
    }
    assert!(
        cc_strictly_below_ec >= 1,
        "causal consistency must strictly prune EC's anomaly set somewhere"
    );
}

#[test]
fn printed_benchmarks_round_trip() {
    for b in all_benchmarks() {
        let text = print_program(&b.program);
        let back = parse(&text).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        assert_eq!(back, b.program, "{} round trip", b.name);
    }
}
