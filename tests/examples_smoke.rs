//! Smoke coverage for the three `examples/`: each test walks the same API
//! path as its example with scaled-down parameters, so a facade change that
//! breaks an example fails `cargo test` — not just `cargo build --examples`
//! in CI.

use atropos::dsl::Value;
use atropos::prelude::*;
use atropos::semantics::{Interpreter, Invocation, ViewStrategy};
use atropos::sim::{run_simulation, ClusterConfig, SimConfig};
use atropos::workloads::{derive_workload, TableSpec};

/// `examples/quickstart.rs`: parse → check → detect → repair on the Fig. 1
/// source text.
#[test]
fn quickstart_path() {
    let source = r#"
        schema STUDENT { st_id: int key, st_name: string, st_em_id: int,
                         st_co_id: int, st_reg: bool }
        schema COURSE  { co_id: int key, co_avail: bool, co_st_cnt: int }
        schema EMAIL   { em_id: int key, em_addr: string }

        txn getSt(id: int) {
            x := select * from STUDENT where st_id = id;
            y := select em_addr from EMAIL where em_id = x.st_em_id;
            z := select co_avail from COURSE where co_id = x.st_co_id;
            return count(y.em_addr) + count(z.co_avail);
        }
        txn regSt(id: int, course: int) {
            update STUDENT set st_co_id = course, st_reg = true where st_id = id;
            x := select co_st_cnt from COURSE where co_id = course;
            update COURSE set co_st_cnt = x.co_st_cnt + 1, co_avail = true
                where co_id = course;
            return 0;
        }
    "#;
    let program = parse(source).expect("quickstart source parses");
    check_program(&program).expect("quickstart source checks");

    let anomalies = detect_anomalies(&program, ConsistencyLevel::EventualConsistency);
    assert!(!anomalies.is_empty(), "Fig. 1 has anomalies under EC");

    let report = repair_program(&program, ConsistencyLevel::EventualConsistency);
    assert!(!report.steps.is_empty(), "repair must apply refactorings");
    assert!(report.remaining.len() < report.initial.len());
    assert!(report.repair_ratio() > 0.0);
    // The report's artefacts must all render (the example prints them).
    let _ = print_program(&report.repaired);
    for vc in &report.vcs {
        let _ = format!("{vc}");
    }
}

/// `examples/perf_comparison.rs`: the four-configuration SmallBank sweep,
/// with a much shorter simulated duration.
#[test]
fn perf_comparison_path() {
    let bench = atropos::workloads::benchmark("SmallBank").unwrap();
    let report = repair_program(&bench.program, ConsistencyLevel::EventualConsistency);
    let unsafe_txns: Vec<String> = report.unsafe_transactions().into_iter().collect();
    let spec = TableSpec::default();

    let original = derive_workload(&bench.program, &bench.mix, &spec);
    let repaired = derive_workload(&report.repaired, &bench.mix, &spec);

    for (label, workload) in [
        ("EC", original.clone()),
        ("AT-EC", repaired.clone()),
        ("SC", original.all_serializable()),
        ("AT-SC", repaired.with_serializable(&unsafe_txns)),
    ] {
        let mut cfg = SimConfig::new(ClusterConfig::us(), 10);
        cfg.duration_ms = 2_000.0;
        let stats = run_simulation(&workload, &cfg);
        assert!(
            stats.throughput_tps > 0.0,
            "{label}: simulation must commit transactions"
        );
        assert!(
            stats.avg_latency_ms > 0.0 && stats.p99_latency_ms >= stats.avg_latency_ms,
            "{label}: latency stats must be ordered"
        );
    }
}

/// `examples/smallbank_repair.rs`: the concurrent-deposit audit, fewer runs.
#[test]
fn smallbank_repair_path() {
    fn lost_deposit_runs(program: &atropos::dsl::Program, is_repaired: bool, runs: u64) -> u64 {
        let mut lost = 0;
        for run in 0..runs {
            let mut interp = Interpreter::new(program, ViewStrategy::Serial, run);
            for schema in &program.schemas {
                if schema.name == "CHECKING" {
                    interp.populate("CHECKING", vec![Value::Int(0)], [("c_bal", Value::Int(100))]);
                } else if is_repaired
                    && schema.name.starts_with("CHECKING")
                    && schema.name.ends_with("_LOG")
                {
                    let field = schema.value_fields()[0].to_owned();
                    interp.populate(
                        &schema.name,
                        vec![Value::Int(0), Value::Uuid(0xFFFF_0000 + run as u128)],
                        [(field, Value::Int(100))],
                    );
                }
            }
            interp.set_strategy(ViewStrategy::RandomAtoms { p: 0.5 });
            let a = interp
                .invoke(&Invocation::new(
                    "depositChecking",
                    vec![Value::Int(0), Value::Int(10)],
                ))
                .unwrap();
            let b = interp
                .invoke(&Invocation::new(
                    "depositChecking",
                    vec![Value::Int(0), Value::Int(10)],
                ))
                .unwrap();
            interp.step(a).unwrap();
            interp.step(b).unwrap();
            interp.run_to_completion(a).unwrap();
            interp.run_to_completion(b).unwrap();
            interp.set_strategy(ViewStrategy::Serial);
            let id = interp
                .invoke(&Invocation::new("balance", vec![Value::Int(0)]))
                .unwrap();
            interp.run_to_completion(id).unwrap();
            let total = interp.return_value(id).and_then(Value::as_int).unwrap();
            if total != 120 {
                lost += 1;
            }
        }
        lost
    }

    let program = atropos::workloads::smallbank::program();
    let report = repair_program(&program, ConsistencyLevel::EventualConsistency);

    let runs = 40;
    let before = lost_deposit_runs(&program, false, runs);
    let after = lost_deposit_runs(&report.repaired, true, runs);
    assert!(before > 0, "the original must lose deposits under chaos");
    assert_eq!(after, 0, "the functional log must never lose deposits");
}
