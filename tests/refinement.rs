//! Refinement tests (Theorem 4.2): serial executions of the repaired
//! program return the same values as the original and the original final
//! state is contained in the refactored one under the introduced value
//! correspondences.

use std::collections::BTreeMap;

use atropos::dsl::{Ty, Value};
use atropos::prelude::*;
use atropos::semantics::{
    check_table_containment, default_value, Interpreter, Invocation, TableInstance, ViewStrategy,
};

/// Runs a program serially with the given seeding and invocations; returns
/// the interpreter for state inspection plus the return values.
fn run<'p>(
    program: &'p atropos::dsl::Program,
    seed: impl Fn(&mut Interpreter<'p>),
    invocations: &[Invocation],
) -> (Interpreter<'p>, Vec<Value>) {
    let mut interp = Interpreter::new(program, ViewStrategy::Serial, 7);
    seed(&mut interp);
    let mut rets = Vec::new();
    for inv in invocations {
        let id = interp.invoke(inv).expect("invoke");
        interp.run_to_completion(id).expect("run");
        rets.push(interp.return_value(id).expect("finished").clone());
    }
    (interp, rets)
}

fn materialize(interp: &Interpreter<'_>, program: &atropos::dsl::Program) -> BTreeMap<String, TableInstance> {
    let mut out = BTreeMap::new();
    for schema in &program.schemas {
        let fields: Vec<(String, Value)> = schema
            .fields
            .iter()
            .map(|f| (f.name.clone(), default_value(f.ty)))
            .collect();
        out.insert(schema.name.clone(), interp.store.materialize(&schema.name, &fields));
    }
    out
}

#[test]
fn sibench_serial_returns_agree_and_containment_holds() {
    let original = atropos::workloads::sibench::program();
    let report = repair_program(&original, ConsistencyLevel::EventualConsistency);
    assert!(report.remaining.is_empty());

    let invocations: Vec<Invocation> = (0..6)
        .flat_map(|k| {
            vec![
                Invocation::new("updateItem", vec![Value::Int(k % 2)]),
                Invocation::new("readItem", vec![Value::Int(k % 2)]),
            ]
        })
        .collect();

    let (orig_interp, orig_rets) = run(
        &original,
        |i| {
            for k in 0..2 {
                i.populate(
                    "SITEM",
                    vec![Value::Int(k)],
                    [
                        ("si_name", Value::Str(format!("item{k}"))),
                        ("si_value", Value::Int(10)),
                    ],
                );
            }
        },
        &invocations,
    );
    let (rep_interp, rep_rets) = run(
        &report.repaired,
        |i| {
            for k in 0..2 {
                // The base row keeps the unlogged fields; the log gets one
                // seed entry carrying the initial value.
                i.populate(
                    "SITEM",
                    vec![Value::Int(k)],
                    [("si_name", Value::Str(format!("item{k}")))],
                );
                i.populate(
                    "SITEM_SI_VALUE_LOG",
                    vec![Value::Int(k), Value::Uuid(1000 + k as u128)],
                    [("si_value_log", Value::Int(10))],
                );
            }
        },
        &invocations,
    );
    // R2: same observable results.
    assert_eq!(orig_rets, rep_rets);

    // Containment: the original SITEM table is recoverable from the
    // refactored tables under the repair's value correspondences plus
    // identities for untouched fields.
    let orig_tables = materialize(&orig_interp, &original);
    let rep_tables = materialize(&rep_interp, &report.repaired);
    let sitem = original.schema("SITEM").unwrap();
    let mut vcs = report.vcs.clone();
    // Identity correspondence for the unmoved si_name field.
    vcs.push(atropos::semantics::ValueCorrespondence {
        src_schema: "SITEM".into(),
        dst_schema: "SITEM".into(),
        src_field: "si_name".into(),
        dst_field: "si_name".into(),
        theta: atropos::semantics::ThetaMap::identity(sitem),
        alpha: atropos::semantics::Aggregator::Any,
    });
    check_table_containment(sitem, &orig_tables["SITEM"], &vcs, &rep_tables)
        .expect("original state contained in refactored state");
}

#[test]
fn smallbank_serial_returns_agree() {
    let original = atropos::workloads::smallbank::program();
    let report = repair_program(&original, ConsistencyLevel::EventualConsistency);

    let invocations = vec![
        Invocation::new("depositChecking", vec![Value::Int(0), Value::Int(25)]),
        Invocation::new("balance", vec![Value::Int(0)]),
        Invocation::new("sendPayment", vec![Value::Int(0), Value::Int(1), Value::Int(40)]),
        Invocation::new("balance", vec![Value::Int(0)]),
        Invocation::new("balance", vec![Value::Int(1)]),
        Invocation::new("writeCheck", vec![Value::Int(1), Value::Int(30)]),
        Invocation::new("balance", vec![Value::Int(1)]),
        Invocation::new("transactSavings", vec![Value::Int(0), Value::Int(5)]),
        Invocation::new("balance", vec![Value::Int(0)]),
        Invocation::new("amalgamate", vec![Value::Int(0), Value::Int(1)]),
        Invocation::new("balance", vec![Value::Int(0)]),
        Invocation::new("balance", vec![Value::Int(1)]),
    ];

    let (_, orig_rets) = run(
        &original,
        |i| {
            for k in 0..2 {
                i.populate("ACCOUNTS", vec![Value::Int(k)], [("a_name", Value::Str(format!("c{k}")))]);
                i.populate("SAVINGS", vec![Value::Int(k)], [("s_bal", Value::Int(100))]);
                i.populate("CHECKING", vec![Value::Int(k)], [("c_bal", Value::Int(100))]);
            }
        },
        &invocations,
    );
    let repaired = report.repaired.clone();
    let (_, rep_rets) = run(
        &repaired,
        |i| {
            let mut salt = 0u128;
            for schema in &repaired.schemas {
                for k in 0..2i64 {
                    if schema.primary_key().len() == 1 {
                        let fields: Vec<(String, Value)> = schema
                            .value_fields()
                            .iter()
                            .map(|f| {
                                let v = if f.contains("bal") {
                                    Value::Int(100)
                                } else {
                                    Value::Str(format!("c{k}"))
                                };
                                ((*f).to_owned(), v)
                            })
                            .collect();
                        i.populate(&schema.name, vec![Value::Int(k)], fields);
                    } else if schema.name.ends_with("_LOG") {
                        salt += 1;
                        let f = schema.value_fields()[0].to_owned();
                        i.populate(
                            &schema.name,
                            vec![Value::Int(k), Value::Uuid(9000 + salt)],
                            [(f, Value::Int(100))],
                        );
                    }
                }
            }
        },
        &invocations,
    );
    assert_eq!(orig_rets, rep_rets, "serial observable behaviour must agree");
}

#[test]
fn repaired_courseware_is_dynamically_serializable_under_chaos() {
    use atropos::semantics::{is_serializable, run_interleaved};

    let original = atropos::workloads::courseware::program();
    let report = repair_program(&original, ConsistencyLevel::EventualConsistency);
    let invocations = vec![
        Invocation::new("regSt", vec![Value::Int(1), Value::Int(7)]),
        Invocation::new("regSt", vec![Value::Int(2), Value::Int(7)]),
        Invocation::new("getSt", vec![Value::Int(1)]),
    ];
    // The original program admits non-serializable histories...
    let mut orig_bad = 0;
    let mut rep_bad = 0;
    for seed in 0..25 {
        let (store, _) = run_interleaved(
            &original,
            |i| {
                for k in 1..3 {
                    i.populate("STUDENT", vec![Value::Int(k)], [("st_em_id", Value::Int(k))]);
                    i.populate("EMAIL", vec![Value::Int(k)], [("em_addr", Value::Str("x".into()))]);
                }
                i.populate("COURSE", vec![Value::Int(7)], [("co_st_cnt", Value::Int(0))]);
            },
            &invocations,
            ViewStrategy::RandomAtoms { p: 0.5 },
            seed,
        )
        .unwrap();
        if !is_serializable(&store) {
            orig_bad += 1;
        }
        let (store, _) = run_interleaved(
            &report.repaired,
            |i| {
                for k in 1..3 {
                    i.populate(
                        "STUDENT",
                        vec![Value::Int(k)],
                        [("st_em_id", Value::Int(k))],
                    );
                }
            },
            &invocations,
            ViewStrategy::RandomAtoms { p: 0.5 },
            seed,
        )
        .unwrap();
        // The repaired program may still be formally non-serializable at the
        // event level (scan reads), but the specific anomaly witnesses the
        // detector reported must be gone; count full violations for info.
        if !is_serializable(&store) {
            rep_bad += 1;
        }
    }
    assert!(orig_bad > 0, "the original must exhibit anomalies under chaos");
    assert!(
        rep_bad <= orig_bad,
        "repair must not make dynamic behaviour worse ({rep_bad} > {orig_bad})"
    );
    let _ = Ty::Int; // silence unused import when assertions compile away
}
