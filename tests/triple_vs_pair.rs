//! Differential harness for the bounded three-instance detection mode: on
//! **all nine workloads × every consistency level**, triple-mode verdicts
//! must be a strict superset of pair-mode verdicts — the pair phase runs
//! unchanged inside the triple pass, so every pair anomaly survives and
//! the non-chain projection of the triple verdicts equals the pair oracle
//! exactly — and the whole triple pass must be **byte-identical at 1, 2,
//! and 8 worker threads** (the same serial-merge determinism contract
//! `tests/parallel_determinism.rs` pins for the pair engine).
//!
//! The harness also pins the subsystem's proof of value: the `Relay`
//! chain scenario (`atropos_workloads::relay`) is reported clean by the
//! pair oracle at *every* consistency level, while triple mode finds the
//! relayed causality violation at EC — and correctly refutes it at CC,
//! where the causal-closure axioms seal the observer chain.
//!
//! With the `.T` chain rules in the loop, the harness also carries the
//! **triple-mode repair differential**: on all nine workloads + Relay,
//! the verdict-cached triple-mode repair driver must equal the
//! from-scratch Fig. 10 reference under the default configuration and
//! each chain-rule ablation — and `Relay` must repair to clean at EC
//! (the chain subsystem's success metric).
//!
//! `ATROPOS_THIN=1` (CI's release rerun with `ATROPOS_THREADS=2`) thins
//! the level sweep to EC + CC and the repair ablations to the per-rule
//! rows; the default run — the tier-1 suite — covers all four levels.

use atropos::detect::{
    detect_anomalies, AnomalyKind, ConsistencyLevel, DetectMode, DetectSession, DetectionEngine,
};
use atropos::repair::{repair_with_config, repair_with_config_scratch, RepairConfig, RepairStep};
use atropos::workloads::benchmark;
use atropos_dsl::print_program;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Chain kinds only the triple templates can produce.
fn is_chain(kind: AnomalyKind) -> bool {
    matches!(
        kind,
        AnomalyKind::ObserverChain | AnomalyKind::WriteSkewCycle | AnomalyKind::FracturedRead
    )
}

/// The level sweep: all four by default, EC + CC under `ATROPOS_THIN`.
fn levels() -> Vec<ConsistencyLevel> {
    let thin = std::env::var_os("ATROPOS_THIN").is_some_and(|v| v != "0" && !v.is_empty());
    if thin {
        vec![
            ConsistencyLevel::EventualConsistency,
            ConsistencyLevel::CausalConsistency,
        ]
    } else {
        ConsistencyLevel::ALL.to_vec()
    }
}

fn assert_superset_and_thread_invariance(workload: &str) {
    let b = benchmark(workload).expect("registered benchmark");
    let mut reference: Option<Vec<String>> = None;
    for threads in THREAD_COUNTS {
        let engine = DetectionEngine::new(threads);
        let mut session = DetectSession::new();
        let mut projection = Vec::new();
        for level in levels() {
            let (triple, stats) =
                engine.detect_with_mode(&b.program, level, DetectMode::Triples, &mut session);
            if threads == THREAD_COUNTS[0] {
                // (a) Superset: every pair verdict survives in triple mode,
                // and the non-chain projection is *exactly* the pair oracle
                // (the triple phase only ever appends chain kinds).
                let pair = detect_anomalies(&b.program, level);
                for p in &pair {
                    assert!(
                        triple.contains(p),
                        "{workload} @ {level}: pair verdict lost in triple mode: {p}"
                    );
                }
                let non_chain: Vec<_> =
                    triple.iter().filter(|p| !is_chain(p.kind)).cloned().collect();
                assert_eq!(
                    non_chain, pair,
                    "{workload} @ {level}: non-chain triple verdicts diverged from the pair oracle"
                );
                let n = b.program.transactions.len() as u64;
                assert_eq!(
                    stats.triples,
                    n * n.saturating_sub(1) * n.saturating_sub(2) / 6,
                    "{workload} @ {level}: every unordered triple of distinct txns is analysed"
                );
            }
            projection.push(format!("{level}: {triple:?}"));
        }
        // (b) Determinism: the whole triple pass is byte-identical at
        // every thread count.
        match &reference {
            None => reference = Some(projection),
            Some(expected) => {
                for (exp, got) in expected.iter().zip(&projection) {
                    assert_eq!(
                        exp, got,
                        "{workload}: triple verdicts diverged at {threads} threads"
                    );
                }
            }
        }
    }
}

macro_rules! triple_vs_pair {
    ($($test:ident => $name:literal),+ $(,)?) => {$(
        #[test]
        fn $test() {
            assert_superset_and_thread_invariance($name);
        }
    )+};
}

// One test per workload so the suite parallelizes across test threads.
triple_vs_pair! {
    tpcc_triples_superset_pairs => "TPC-C",
    seats_triples_superset_pairs => "SEATS",
    courseware_triples_superset_pairs => "Courseware",
    smallbank_triples_superset_pairs => "SmallBank",
    twitter_triples_superset_pairs => "Twitter",
    fmke_triples_superset_pairs => "FMKe",
    sibench_triples_superset_pairs => "SIBench",
    wikipedia_triples_superset_pairs => "Wikipedia",
    killrchat_triples_superset_pairs => "Killrchat",
}

/// The triple-mode repair ablation rows: the default configuration plus
/// one row per chain rule (so each rule's absence is individually pinned),
/// plus `no-merge` — which gates the materialization's collapsing merge —
/// in the full tier-1 run. `ATROPOS_THIN` keeps the per-rule rows and
/// drops only the `no-merge` extra.
fn triple_repair_ablations() -> Vec<(&'static str, RepairConfig)> {
    let thin = std::env::var_os("ATROPOS_THIN").is_some_and(|v| v != "0" && !v.is_empty());
    let rows: &[&str] = if thin {
        &["default", "no-materialize", "no-chain-cut"]
    } else {
        &["default", "no-merge", "no-materialize", "no-chain-cut"]
    };
    RepairConfig::ablations()
        .into_iter()
        .filter(|(name, _)| rows.contains(name))
        .map(|(name, mut config)| {
            config.mode = DetectMode::Triples;
            (name, config)
        })
        .collect()
}

/// The repair-level sibling of the detection superset harness: with the
/// chain rules enabled, the verdict-cached **triple-mode** repair driver
/// must produce exactly the same repair as the from-scratch Fig. 10
/// reference — same steps, same remaining anomalies, same value
/// correspondences, same ratio, byte-identical repaired program — under
/// the default configuration and each chain-rule ablation.
fn assert_triple_repair_cached_equals_scratch(workload: &str) {
    let b = benchmark(workload).expect("registered benchmark");
    for (config_name, config) in triple_repair_ablations() {
        let cached = repair_with_config(&b.program, &config);
        let scratch = repair_with_config_scratch(&b.program, &config);
        let ctx = format!("{workload} [triples/{config_name}]");
        assert_eq!(cached.initial, scratch.initial, "{ctx}: initial anomalies");
        assert_eq!(cached.steps, scratch.steps, "{ctx}: applied steps");
        assert_eq!(cached.remaining, scratch.remaining, "{ctx}: remaining anomalies");
        assert_eq!(cached.vcs, scratch.vcs, "{ctx}: value correspondences");
        assert_eq!(cached.post, scratch.post, "{ctx}: post-processing report");
        assert!(
            (cached.repair_ratio() - scratch.repair_ratio()).abs() < 1e-12,
            "{ctx}: repair ratio {} vs {}",
            cached.repair_ratio(),
            scratch.repair_ratio()
        );
        assert_eq!(
            print_program(&cached.repaired),
            print_program(&scratch.repaired),
            "{ctx}: repaired programs diverge"
        );
        assert_eq!(scratch.stats.pairs_reused(), 0, "{ctx}");
        assert_eq!(scratch.stats.detections_skipped, 0, "{ctx}");
    }
}

macro_rules! triple_repair_differential {
    ($($test:ident => $name:literal),+ $(,)?) => {$(
        #[test]
        fn $test() {
            assert_triple_repair_cached_equals_scratch($name);
        }
    )+};
}

// One test per workload (plus Relay below) so the suite parallelizes.
triple_repair_differential! {
    tpcc_triple_repair_matches_scratch => "TPC-C",
    seats_triple_repair_matches_scratch => "SEATS",
    courseware_triple_repair_matches_scratch => "Courseware",
    smallbank_triple_repair_matches_scratch => "SmallBank",
    twitter_triple_repair_matches_scratch => "Twitter",
    fmke_triple_repair_matches_scratch => "FMKe",
    sibench_triple_repair_matches_scratch => "SIBench",
    wikipedia_triple_repair_matches_scratch => "Wikipedia",
    killrchat_triple_repair_matches_scratch => "Killrchat",
    relay_triple_repair_matches_scratch => "Relay",
}

/// The tentpole's success metric, end to end on the registered workload:
/// relay materialization repairs `Relay` to clean in triple mode at EC —
/// `repair_ratio == 1.0` under the corrected (clamped, mode-consistent)
/// ratio semantics — while ablating the rule leaves the chain surfaced
/// but unrepaired at ratio 0.
#[test]
fn relay_repairs_to_clean_in_triple_mode_at_ec() {
    let b = benchmark("Relay").expect("chain scenario registered");
    let config = RepairConfig {
        mode: DetectMode::Triples,
        ..RepairConfig::default()
    };
    let report = repair_with_config(&b.program, &config);
    assert_eq!(report.initial.len(), 1, "{:?}", report.initial);
    assert_eq!(report.initial[0].kind, AnomalyKind::ObserverChain);
    assert!(report.remaining.is_empty(), "{:?}", report.remaining);
    assert!((report.repair_ratio() - 1.0).abs() < 1e-12, "{}", report.repair_ratio());
    assert!(
        report.steps.iter().any(|s| matches!(s, RepairStep::Materialize { .. })),
        "{:?}",
        report.steps
    );
    // The repaired program is clean for *both* oracles at EC.
    assert!(detect_anomalies(&report.repaired, ConsistencyLevel::EventualConsistency).is_empty());
    let engine = DetectionEngine::serial();
    let mut session = DetectSession::new();
    let (triples, _) = engine.detect_with_mode(
        &report.repaired,
        ConsistencyLevel::EventualConsistency,
        DetectMode::Triples,
        &mut session,
    );
    assert!(triples.is_empty(), "{triples:?}");

    // Ablation row: without the materialization (and with the chain-cut
    // also off), triple mode degrades to PR 5 — surfaced, not repaired,
    // and the clamped ratio reports zero progress instead of going
    // negative.
    let ablated = RepairConfig {
        mode: DetectMode::Triples,
        enable_materialize: false,
        enable_chain_cut: false,
        ..RepairConfig::default()
    };
    let stalled = repair_with_config(&b.program, &ablated);
    assert_eq!(stalled.remaining.len(), 1);
    assert_eq!(stalled.repair_ratio(), 0.0);
}

/// The proof-of-value regression: a genuine anomaly found in triple mode
/// on a workload the pair oracle reports clean at the same level.
#[test]
fn relay_scenario_is_pair_clean_but_triple_dirty_at_ec() {
    let b = benchmark("Relay").expect("chain scenario registered");
    // Pair mode: clean at every level — the program has no pairwise
    // template instance at all.
    for level in ConsistencyLevel::ALL {
        assert!(
            detect_anomalies(&b.program, level).is_empty(),
            "the pair oracle must be blind to the 3-hop chain at {level}"
        );
    }
    let engine = DetectionEngine::serial();
    let mut session = DetectSession::new();
    // Triple mode at the same level (EC): the observer chain is realizable.
    let (ec, _) = engine.detect_with_mode(
        &b.program,
        ConsistencyLevel::EventualConsistency,
        DetectMode::Triples,
        &mut session,
    );
    assert_eq!(ec.len(), 1, "{ec:?}");
    assert_eq!(ec[0].kind, AnomalyKind::ObserverChain);
    assert!(
        ec[0].witnesses.contains("relay"),
        "the relaying transaction is the chain's witness: {:?}",
        ec[0]
    );
    // Causal consistency closes visibility through the chain: the same
    // triple oracle proves the anomaly unrealizable one level up.
    let (cc, _) = engine.detect_with_mode(
        &b.program,
        ConsistencyLevel::CausalConsistency,
        DetectMode::Triples,
        &mut session,
    );
    assert!(cc.is_empty(), "CC seals the observer chain: {cc:?}");
}
