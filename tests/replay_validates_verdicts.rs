//! The witness-replay differential harness — the dynamic half of the
//! oracle's soundness story. For every initial dirty verdict a full
//! engine-driven repair run reports on TPC-C, Courseware, SmallBank, and
//! the Relay chain scenario, in the default pair mode *and* the bounded
//! three-instance triple mode, at EC and CC:
//!
//! 1. the verdict's satisfying assignment decodes into a concrete schedule
//!    ([`atropos::detect::decode_witness`]) that, executed deterministically
//!    on the simulated cluster, **manifests** the anomaly's observable
//!    predicate against the *original* program — the static witness is not
//!    a solver artifact; and
//! 2. re-decoding the same verdict against the *repaired* program with its
//!    unsafe set marked ([`atropos::detect::decode_witness_marked`])
//!    yields either no schedule at all (the anomaly's shape is gone, or
//!    every participant moved under SC) or one that no longer manifests —
//!    the repair actually **suppresses** the concrete interleaving.
//!
//! SmallBank's triple mode doubles as the regression pin for the
//! orientation bug replay flushed out: its three `WriteSkewCycle`
//! verdicts carry *two* witnesses each (merged from two canonical trio
//! orientations), and decoding them requires trying every rotation of the
//! trio, because the skew enumeration pins the cycle's first role to
//! instance 0.

use atropos::detect::{
    decode_witness_marked, replay_verdict, ConsistencyLevel, DetectMode, DetectSession,
    DetectionEngine,
};
use atropos::repair::{repair_with_engine, RepairConfig};
use atropos::sim::run_schedule;
use atropos::workloads::benchmark;

const LEVELS: [ConsistencyLevel; 2] = [
    ConsistencyLevel::EventualConsistency,
    ConsistencyLevel::CausalConsistency,
];

fn assert_replay_validates(workload: &str, mode: DetectMode) {
    let b = benchmark(workload).expect("registered benchmark");
    let engine = DetectionEngine::new(2);
    for level in LEVELS {
        let config = RepairConfig {
            level,
            mode,
            ..RepairConfig::default()
        };
        let mut session = DetectSession::new();
        let report = repair_with_engine(&b.program, &config, &engine, &mut session);
        let marked = report.unsafe_transactions();
        for verdict in &report.initial {
            // Original program: the witness decodes and manifests.
            let outcome = replay_verdict(&b.program, verdict, level).unwrap_or_else(|| {
                panic!(
                    "{workload} @ {level} ({mode}): {:?} {}~{} decoded to no schedule",
                    verdict.kind, verdict.txn1, verdict.txn2
                )
            });
            assert!(
                outcome.manifested,
                "{workload} @ {level} ({mode}): {:?} {}~{} replayed clean \
                 (violations {:?}, checks {}/{})",
                verdict.kind,
                verdict.txn1,
                verdict.txn2,
                outcome.violations,
                outcome.checks_passed,
                outcome.checks_total
            );
            // Repaired program: the same verdict no longer survives.
            let surviving = decode_witness_marked(&report.repaired, verdict, level, &marked)
                .is_some_and(|s| run_schedule(&s).manifested);
            assert!(
                !surviving,
                "{workload} @ {level} ({mode}): {:?} {}~{} still manifests after repair",
                verdict.kind, verdict.txn1, verdict.txn2
            );
        }
        // The engine-recorded counters agree with the replay we just did.
        let n = report.initial.len() as u64;
        assert_eq!(report.stats.replay_manifested, n, "{workload} @ {level}");
        assert_eq!(report.stats.replay_failed, 0, "{workload} @ {level}");
        assert_eq!(report.stats.replay_surviving, 0, "{workload} @ {level}");
        assert_eq!(
            report.stats.replay_suppressed, n,
            "{workload} @ {level}: every initial verdict counts as suppressed"
        );
    }
}

macro_rules! validates {
    ($($test:ident => ($name:literal, $mode:ident)),+ $(,)?) => {$(
        #[test]
        fn $test() {
            assert_replay_validates($name, DetectMode::$mode);
        }
    )+};
}

// One test per (workload, mode) so the suite parallelizes across test
// threads. Relay's pair-mode run holds vacuously (the pair oracle is blind
// to its observer chain) and pins exactly that blindness.
validates! {
    tpcc_pair_verdicts_replay => ("TPC-C", Pairs),
    tpcc_triple_verdicts_replay => ("TPC-C", Triples),
    courseware_pair_verdicts_replay => ("Courseware", Pairs),
    courseware_triple_verdicts_replay => ("Courseware", Triples),
    smallbank_pair_verdicts_replay => ("SmallBank", Pairs),
    relay_pair_verdicts_replay => ("Relay", Pairs),
    relay_triple_verdicts_replay => ("Relay", Triples),
}

/// The orientation regression, pinned explicitly: SmallBank's triple mode
/// reports three two-witness `WriteSkewCycle` verdicts whose `txn1` is not
/// the program-order-first transaction of the trio — decoding them only
/// works if the decoder tries every rotation of the trio orientation.
#[test]
fn smallbank_triple_verdicts_replay_across_rotations() {
    let b = benchmark("SmallBank").expect("registered benchmark");
    let engine = DetectionEngine::new(2);
    let config = RepairConfig {
        mode: DetectMode::Triples,
        ..RepairConfig::default()
    };
    let mut session = DetectSession::new();
    let report = repair_with_engine(&b.program, &config, &engine, &mut session);
    let skews: Vec<_> = report
        .initial
        .iter()
        .filter(|v| v.witnesses.len() == 2)
        .collect();
    assert!(
        !skews.is_empty(),
        "expected merged multi-witness skew verdicts on SmallBank"
    );
    for verdict in &skews {
        let outcome = replay_verdict(&b.program, verdict, config.level)
            .unwrap_or_else(|| panic!("{}~{} decoded to no schedule", verdict.txn1, verdict.txn2));
        assert!(outcome.manifested, "{}~{}", verdict.txn1, verdict.txn2);
    }
    assert_replay_validates("SmallBank", DetectMode::Triples);
}
