//! Golden round-trip coverage for the DSL frontend: for every benchmark of
//! Table 1, `parse(print_program(p)) == p`, printing is a fixed point, and
//! the printed text keeps the structure clients depend on (schema and
//! transaction headers, command labels).

use atropos::prelude::*;
use atropos::workloads::all_benchmarks;

#[test]
fn every_benchmark_round_trips_exactly() {
    for b in all_benchmarks() {
        let text = print_program(&b.program);
        let back = parse(&text).unwrap_or_else(|e| panic!("{}: re-parse failed: {e}\n{text}", b.name));
        assert_eq!(back, b.program, "{}: parse(print(p)) != p", b.name);
    }
}

#[test]
fn printing_is_a_fixed_point() {
    // print ∘ parse ∘ print == print — i.e. the printer emits canonical text.
    for b in all_benchmarks() {
        let once = print_program(&b.program);
        let twice = print_program(&parse(&once).expect("canonical text parses"));
        assert_eq!(once, twice, "{}: printer not idempotent", b.name);
    }
}

#[test]
fn printed_text_keeps_declared_structure() {
    for b in all_benchmarks() {
        let text = print_program(&b.program);
        for schema in &b.program.schemas {
            assert!(
                text.contains(&format!("schema {}", schema.name)),
                "{}: printed text lost schema {}",
                b.name,
                schema.name
            );
        }
        for txn in &b.program.transactions {
            assert!(
                text.contains(&format!("txn {}", txn.name)),
                "{}: printed text lost transaction {}",
                b.name,
                txn.name
            );
        }
    }
}

#[test]
fn round_trip_survives_repair() {
    // The refactored output must stay inside the printable/parsable fragment
    // of the language: repairs are programs, not just ASTs.
    for b in all_benchmarks() {
        let report = repair_program(&b.program, ConsistencyLevel::EventualConsistency);
        let text = print_program(&report.repaired);
        let back = parse(&text)
            .unwrap_or_else(|e| panic!("{}: repaired program failed to re-parse: {e}", b.name));
        assert_eq!(back, report.repaired, "{}: repaired round trip", b.name);
        check_program(&back).unwrap_or_else(|e| panic!("{}: repaired re-check: {e}", b.name));
    }
}

#[test]
fn golden_courseware_header_lines() {
    // A small literal golden fragment so gross printer format drift fails
    // loudly rather than silently re-parsing.
    let text = print_program(&atropos::workloads::courseware::program());
    for needle in [
        "schema STUDENT {",
        "st_id: int key",
        "txn regSt(",
        "return ",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
}
