//! Offline, dependency-free subset of the `rand` 0.8 API.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the small slice of `rand` it actually uses: a
//! seedable PRNG (`rngs::StdRng`), the [`Rng`] extension trait with
//! `gen_range` / `gen_bool`, and [`seq::SliceRandom::choose`].
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — deterministic for a
//! given seed, statistically solid for simulation workloads, and obviously
//! not cryptographic. Code written against this shim compiles unchanged
//! against the real `rand` 0.8.

/// Low-level source of randomness. Mirrors `rand_core::RngCore` closely
/// enough for in-workspace use.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Construction of a reproducible generator from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;

    /// Non-deterministic seeding. Offline shim: derives entropy from the
    /// system clock — good enough for the simulator's exploratory runs.
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5eed);
        Self::seed_from_u64(nanos)
    }
}

/// Types that can be sampled uniformly from a range (subset of
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Sized {}

/// Ranges that can produce a uniform sample (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    fn is_empty_range(&self) -> bool;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {}

        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift bounded sampling; the tiny modulo bias of a
                // plain `% span` would be fine too, but this is just as cheap.
                let wide = (rng.next_u64() as u128).wrapping_mul(span);
                let offset = (wide >> 64) as i128;
                (self.start as i128 + offset) as $t
            }
            fn is_empty_range(&self) -> bool {
                self.start >= self.end
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let wide = (rng.next_u64() as u128).wrapping_mul(span);
                let offset = (wide >> 64) as i128;
                (lo as i128 + offset) as $t
            }
            fn is_empty_range(&self) -> bool {
                self.start() > self.end()
            }
        }
    )*};
}

impl_int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
    fn is_empty_range(&self) -> bool {
        self.start >= self.end
    }
}

impl SampleUniform for f32 {}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32;
        self.start + unit * (self.end - self.start)
    }
    fn is_empty_range(&self) -> bool {
        self.start >= self.end
    }
}

/// User-facing extension trait, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(numerator <= denominator && denominator > 0);
        self.gen_range(0..denominator) < numerator
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the same family the real `rand::rngs::StdRng` family
    /// draws from (statistically), deterministic under `seed_from_u64`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = Self::splitmix64(&mut state);
            }
            // Guard against the all-zero state, unreachable from splitmix but
            // cheap to rule out entirely.
            if s == [0; 4] {
                s[0] = 0x9e3779b97f4a7c15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias so `SmallRng`-flavoured call sites also compile.
    pub type SmallRng = StdRng;
}

pub mod seq {
    use super::Rng;

    /// Subset of `rand::seq::SliceRandom`: uniform choice and Fisher–Yates
    /// shuffling.
    pub trait SliceRandom {
        type Item;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: i64 = rng.gen_range(-50i64..50);
            assert!((-50..50).contains(&x));
            let u: usize = rng.gen_range(3usize..4);
            assert_eq!(u, 3);
            let f: f64 = rng.gen_range(0.0..2.5);
            assert!((0.0..2.5).contains(&f));
            let inc: usize = rng.gen_range(0..=4usize);
            assert!(inc <= 4);
        }
    }

    #[test]
    fn bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let ratio = hits as f64 / 20_000.0;
        assert!((0.22..0.28).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = StdRng::seed_from_u64(3);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let items = [1, 2, 3];
        for _ in 0..100 {
            assert!(items.contains(items.choose(&mut rng).unwrap()));
        }
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
