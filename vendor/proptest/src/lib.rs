//! Offline, dependency-free subset of the `proptest` API.
//!
//! The build environment has no crates.io access, so this shim implements the
//! slice of `proptest` the workspace's property tests use:
//!
//! * the [`strategy::Strategy`] trait with `prop_map`, `prop_recursive`,
//!   `boxed`, plus [`strategy::Just`], unions ([`prop_oneof!`]), tuple and
//!   integer-range strategies, and a tiny regex-subset string strategy;
//! * [`collection::vec`] with the usual size-range sugar;
//! * [`arbitrary::any`] for the primitive types the tests draw;
//! * the [`proptest!`] macro with `#![proptest_config(..)]`, multiple
//!   bindings per test, and `prop_assert!` / `prop_assert_eq!`.
//!
//! Differences from the real crate: generation is deterministic per test
//! (seeded from the test's name) and failing cases are reported but not
//! shrunk. Tests written against this shim compile unchanged against real
//! `proptest`.

pub mod rng {
    /// SplitMix64 — small, fast, deterministic. Each `proptest!` test gets
    /// one seeded from the hash of its own name, so runs are reproducible
    /// without a persistence file.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn seed_from_u64(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9e3779b97f4a7c15,
            }
        }

        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the test name keeps distinct tests on distinct
            // streams while staying deterministic across runs.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            Self::seed_from_u64(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        /// Uniform draw from `0..n` (`n > 0`).
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }

        pub fn bool(&mut self) -> bool {
            self.next_u64() & 1 == 1
        }
    }
}

pub mod test_runner {
    /// Subset of `proptest::test_runner::Config`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
        pub max_shrink_iters: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Default::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }
}

pub mod strategy {
    use crate::rng::TestRng;
    use std::rc::Rc;

    /// Value-generation strategy. The shim drops shrinking, so a strategy is
    /// just a composable generator.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// `depth` levels of recursion at most; the size-tuning parameters of
        /// real proptest are accepted and ignored.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> Recursive<Self::Value>
        where
            Self: Sized + 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2 + 'static,
        {
            Recursive {
                base: self.boxed(),
                grow: Rc::new(move |b| f(b).boxed()),
                depth,
            }
        }

        fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    trait DynStrategy {
        type Value;
        fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// Clonable type-erased strategy (`Strategy::boxed`).
    pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.dyn_generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Clone, F: Clone> Clone for Map<S, F> {
        fn clone(&self) -> Self {
            Map {
                inner: self.inner.clone(),
                f: self.f.clone(),
            }
        }
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            // Bounded rejection sampling; a pathological filter fails loudly
            // rather than spinning forever.
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 consecutive candidates");
        }
    }

    pub struct Recursive<T> {
        base: BoxedStrategy<T>,
        grow: Rc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
        depth: u32,
    }

    impl<T> Clone for Recursive<T> {
        fn clone(&self) -> Self {
            Recursive {
                base: self.base.clone(),
                grow: Rc::clone(&self.grow),
                depth: self.depth,
            }
        }
    }

    impl<T> Strategy for Recursive<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let levels = rng.below(self.depth as u64 + 1) as u32;
            let mut strat = self.base.clone();
            for _ in 0..levels {
                strat = (self.grow)(strat);
            }
            strat.generate(rng)
        }
    }

    /// Uniform choice among same-valued strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                options: self.options.clone(),
            }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let k = rng.below(self.options.len() as u64) as usize;
            self.options[k].generate(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64 + 1;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))+) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
    }

    /// `&str` as a strategy: the pattern is interpreted as the regex subset
    /// `proptest` users lean on for identifiers — literals, `[a-z0-9_]`-style
    /// classes (ranges and single chars), and `{n}` / `{m,n}` / `?` / `*` /
    /// `+` quantifiers (the unbounded ones capped at 8 repeats).
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        #[derive(Debug)]
        enum Atom {
            Lit(char),
            Class(Vec<(char, char)>),
        }

        let chars: Vec<char> = pattern.chars().collect();
        let mut atoms: Vec<(Atom, usize, usize)> = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let atom = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .map(|p| i + p)
                        .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
                    let mut ranges = Vec::new();
                    let mut j = i + 1;
                    while j < close {
                        if j + 2 < close && chars[j + 1] == '-' {
                            ranges.push((chars[j], chars[j + 2]));
                            j += 3;
                        } else {
                            ranges.push((chars[j], chars[j]));
                            j += 1;
                        }
                    }
                    i = close + 1;
                    Atom::Class(ranges)
                }
                '\\' if i + 1 < chars.len() => {
                    i += 2;
                    Atom::Lit(chars[i - 1])
                }
                c => {
                    i += 1;
                    Atom::Lit(c)
                }
            };
            // Optional quantifier.
            let (lo, hi) = if i < chars.len() {
                match chars[i] {
                    '{' => {
                        let close = chars[i..]
                            .iter()
                            .position(|&c| c == '}')
                            .map(|p| i + p)
                            .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
                        let body: String = chars[i + 1..close].iter().collect();
                        i = close + 1;
                        match body.split_once(',') {
                            Some((lo, hi)) => (
                                lo.trim().parse().expect("bad {m,n} lower bound"),
                                hi.trim().parse().expect("bad {m,n} upper bound"),
                            ),
                            None => {
                                let n: usize = body.trim().parse().expect("bad {n} count");
                                (n, n)
                            }
                        }
                    }
                    '?' => {
                        i += 1;
                        (0, 1)
                    }
                    '*' => {
                        i += 1;
                        (0, 8)
                    }
                    '+' => {
                        i += 1;
                        (1, 8)
                    }
                    _ => (1, 1),
                }
            } else {
                (1, 1)
            };
            atoms.push((atom, lo, hi));
        }

        let mut out = String::new();
        for (atom, lo, hi) in atoms {
            let reps = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..reps {
                match &atom {
                    Atom::Lit(c) => out.push(*c),
                    Atom::Class(ranges) => {
                        let total: u64 = ranges
                            .iter()
                            .map(|&(a, b)| (b as u64).saturating_sub(a as u64) + 1)
                            .sum();
                        let mut pick = rng.below(total.max(1));
                        for &(a, b) in ranges {
                            let size = (b as u64).saturating_sub(a as u64) + 1;
                            if pick < size {
                                out.push(char::from_u32(a as u32 + pick as u32).unwrap_or(a));
                                break;
                            }
                            pick -= size;
                        }
                    }
                }
            }
        }
        out
    }
}

pub mod arbitrary {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;

    /// Canonical strategy for a type (`any::<T>()`).
    pub trait Arbitrary: Sized {
        type Strategy: Strategy<Value = Self>;
        fn arbitrary() -> Self::Strategy;
    }

    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.bool()
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;
        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty => $name:ident),*) => {$(
            pub struct $name;

            impl Strategy for $name {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }

            impl Arbitrary for $t {
                type Strategy = $name;
                fn arbitrary() -> $name {
                    $name
                }
            }
        )*};
    }

    impl_arbitrary_int! {
        i8 => AnyI8, i16 => AnyI16, i32 => AnyI32, i64 => AnyI64,
        u8 => AnyU8, u16 => AnyU16, u32 => AnyU32, u64 => AnyU64,
        usize => AnyUsize, isize => AnyIsize
    }
}

pub mod collection {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;

    /// Element count for [`vec`]; converts from the usual range sugar.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Clone> Clone for VecStrategy<S> {
        fn clone(&self) -> Self {
            VecStrategy {
                element: self.element.clone(),
                size: self.size.clone(),
            }
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    // `prop::collection::vec(..)`-style paths.
    pub use crate as prop;
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            panic!("prop_assert failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            panic!($($fmt)*);
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!(
                "prop_assert_eq failed: `{}` != `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!($($fmt)*);
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            panic!(
                "prop_assert_ne failed: both sides equal\n value: {:?}",
                l
            );
        }
    }};
}

/// The `proptest!` test harness: runs each test body `config.cases` times
/// with fresh strategy draws. Deterministic per test name; no shrinking — a
/// failing draw panics with the case number so it can be replayed by index.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::rng::TestRng::from_name(stringify!($name));
                $(let $arg = $strategy;)+
                for __case in 0..config.cases {
                    // Inner lets shadow the strategy bindings with this
                    // case's draws.
                    $(let $arg = $crate::strategy::Strategy::generate(&$arg, &mut rng);)+
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),+) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_pattern_subset() {
        let mut rng = crate::rng::TestRng::from_name("string_pattern_subset");
        for _ in 0..500 {
            let s = Strategy::generate(&"[a-z]{1,6}", &mut rng);
            assert!((1..=6).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
    }

    #[test]
    fn union_and_map_compose() {
        let strat = prop_oneof![
            (0i64..5).prop_map(|n| n * 2),
            Just(100i64),
        ];
        let mut rng = crate::rng::TestRng::from_name("union_and_map_compose");
        let mut saw_branchy = false;
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!(v == 100 || (v % 2 == 0 && v < 10));
            saw_branchy |= v != 100;
        }
        assert!(saw_branchy);
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(#[allow(dead_code)] i64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(l, r) => 1 + depth(l).max(depth(r)),
            }
        }
        let strat = (0i64..10).prop_map(Tree::Leaf).prop_recursive(3, 24, 2, |inner| {
            (inner.clone(), inner)
                .prop_map(|(l, r)| Tree::Node(Box::new(l), Box::new(r)))
        });
        let mut rng = crate::rng::TestRng::from_name("recursive_terminates");
        for _ in 0..200 {
            assert!(depth(&strat.generate(&mut rng)) <= 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn harness_draws_in_range(x in 1usize..12, flag in any::<bool>()) {
            prop_assert!((1..12).contains(&x));
            let _ = flag;
        }

        #[test]
        fn harness_vec_sizes(v in prop::collection::vec((0u32..12, any::<bool>()), 1..4)) {
            prop_assert!((1..4).contains(&v.len()));
            for (n, _) in v {
                prop_assert!(n < 12);
            }
        }
    }
}
