//! Offline, dependency-free subset of the `criterion` benchmarking API.
//!
//! The build environment has no crates.io access, so this shim supports the
//! workspace's `[[bench]] harness = false` targets with the core surface:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] (with
//! `sample_size` and `finish`), [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple — per sample it runs a timed batch and
//! reports min / median / mean / max of the per-iteration wall-clock time
//! (the median is the robust location estimate real criterion centres its
//! report on, so the shim's headline number survives scheduler outliers the
//! way users expect). There is no
//! statistical analysis, HTML report, or `target/criterion` output; numbers
//! land on stdout. Benches written against this shim compile unchanged
//! against real criterion.
//!
//! Cargo invokes bench binaries with `--bench` under `cargo bench` and with
//! `--test` under `cargo test --benches`; in test mode each benchmark body
//! runs exactly once so CI can smoke-test benches cheaply.
//!
//! Beyond real criterion's surface, the shim records every measurement in a
//! process-wide registry ([`take_results`]) so bench binaries can also emit
//! their numbers through the workspace's CSV reporting. Test mode records
//! nothing (no timings are taken), so smoke runs never overwrite real data.

use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One completed measurement, in seconds per iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Benchmark id (`group/function`).
    pub id: String,
    /// Fastest sample.
    pub min: f64,
    /// Median over samples (midpoint average for even sample counts) —
    /// the outlier-robust headline statistic.
    pub median: f64,
    /// Mean over samples.
    pub mean: f64,
    /// Slowest sample.
    pub max: f64,
    /// Samples measured.
    pub samples: usize,
    /// Iterations per sample.
    pub iters: u64,
}

static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// Drains every measurement recorded since the last call (bench mode only;
/// empty after test-mode runs).
pub fn take_results() -> Vec<BenchResult> {
    std::mem::take(&mut RESULTS.lock().expect("results registry"))
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    /// Full (but quick) measurement — `cargo bench`.
    Bench,
    /// Run each body once and report nothing — `cargo test --benches`.
    Test,
}

fn mode_from_args() -> Mode {
    if std::env::args().any(|a| a == "--test") {
        Mode::Test
    } else {
        Mode::Bench
    }
}

/// Top-level benchmark driver, handed to every `criterion_group!` function.
pub struct Criterion {
    mode: Mode,
    /// Target number of measured samples per benchmark.
    sample_size: usize,
    /// Soft cap on total measurement time per benchmark.
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            mode: mode_from_args(),
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self.mode, self.sample_size, self.measurement_time, id, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_owned(),
            sample_size: None,
            measurement_time: None,
        }
    }
}

/// Benchmarks that share a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    measurement_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = Some(d);
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(
            self.parent.mode,
            self.sample_size.unwrap_or(self.parent.sample_size),
            self.measurement_time
                .unwrap_or(self.parent.measurement_time),
            &full,
            &mut f,
        );
        self
    }

    pub fn finish(self) {}
}

/// Passed to the benchmark closure; `iter` does the actual timing.
pub struct Bencher {
    mode: Mode,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        if self.mode == Mode::Test {
            black_box(routine());
            self.iters = 1;
            self.elapsed = Duration::ZERO;
            return;
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F>(mode: Mode, sample_size: usize, budget: Duration, id: &str, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    if mode == Mode::Test {
        let mut b = Bencher {
            mode,
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        return;
    }

    // Calibrate: find an iteration count that takes ≥ ~1ms per sample so
    // Instant resolution doesn't dominate.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            mode,
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
            break;
        }
        iters *= 4;
    }

    let mut per_iter: Vec<f64> = Vec::with_capacity(sample_size);
    let started = Instant::now();
    for _ in 0..sample_size {
        let mut b = Bencher {
            mode,
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter.push(b.elapsed.as_secs_f64() / iters as f64);
        if started.elapsed() > budget {
            break;
        }
    }

    let n = per_iter.len() as f64;
    let mean = per_iter.iter().sum::<f64>() / n;
    let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per_iter.iter().cloned().fold(0.0f64, f64::max);
    let median = median_of(&per_iter);
    println!(
        "{id:<50} time: [{} {} {} {}]  ({} samples × {iters} iters, min med mean max)",
        fmt_time(min),
        fmt_time(median),
        fmt_time(mean),
        fmt_time(max),
        per_iter.len(),
    );
    RESULTS.lock().expect("results registry").push(BenchResult {
        id: id.to_owned(),
        min,
        median,
        mean,
        max,
        samples: per_iter.len(),
        iters,
    });
}

/// Median of the samples: middle element for odd counts, midpoint average
/// for even counts (0.0 for an empty slice, which `run_one` never passes).
fn median_of(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

/// Declares a group-runner function, mirroring real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_run() {
        let mut c = Criterion {
            mode: Mode::Test,
            ..Criterion::default()
        };
        let mut hits = 0u32;
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.sample_size(2);
        g.bench_function("inner", |b| b.iter(|| hits += 1));
        g.finish();
        assert_eq!(hits, 1, "test mode runs each body exactly once");
    }

    #[test]
    fn median_is_robust_to_one_outlier() {
        assert_eq!(median_of(&[1.0, 2.0, 100.0]), 2.0);
        assert_eq!(median_of(&[1.0, 2.0, 3.0, 100.0]), 2.5);
        assert_eq!(median_of(&[7.0]), 7.0);
        assert_eq!(median_of(&[]), 0.0);
    }

    #[test]
    fn time_formatting() {
        assert_eq!(fmt_time(2e-9), "2.00 ns");
        assert_eq!(fmt_time(3.5e-6), "3.50 µs");
        assert_eq!(fmt_time(1.2e-3), "1.20 ms");
        assert_eq!(fmt_time(2.0), "2.00 s");
    }
}
