//! # atropos
//!
//! Facade crate for the Atropos reproduction: automated schema refactoring
//! that repairs serializability bugs in distributed database programs
//! (Rahmani, Nagar, Delaware, Jagannathan — PLDI 2021).
//!
//! This crate re-exports the whole workspace under one roof:
//!
//! * [`dsl`] — the database-program language (AST, parser, printer, checker);
//! * [`sat`] — the CDCL SAT solver used to discharge anomaly queries;
//! * [`semantics`] — the weakly-isolated operational semantics and history
//!   checker;
//! * [`detect`] — the static serializability-anomaly detector;
//! * [`repair`] — value correspondences, refactoring rules, and the repair
//!   algorithm;
//! * [`sim`] — the geo-replicated store simulator used for the performance
//!   experiments;
//! * [`workloads`] — the nine OLTP benchmarks of the paper's evaluation.
//!
//! # Examples
//!
//! Repair the course-management program from Fig. 1 of the paper:
//!
//! ```
//! use atropos::prelude::*;
//!
//! let program = atropos::workloads::courseware::program();
//! let report = repair_program(&program, ConsistencyLevel::EventualConsistency);
//! assert!(report.remaining.len() <= report.initial.len());
//! ```

pub use atropos_core as repair;
pub use atropos_detect as detect;
pub use atropos_dsl as dsl;
pub use atropos_sat as sat;
pub use atropos_semantics as semantics;
pub use atropos_sim as sim;
pub use atropos_workloads as workloads;

/// Convenience re-exports covering the common entry points.
pub mod prelude {
    pub use atropos_core::{repair_program, RepairConfig, RepairReport};
    pub use atropos_detect::{detect_anomalies, AccessPair, ConsistencyLevel};
    pub use atropos_dsl::{check_program, parse, print_program, Program};
}
