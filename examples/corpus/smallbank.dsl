schema ACCOUNTS { a_custid: int key, a_name: string }
schema SAVINGS  { s_custid: int key, s_bal: int }
schema CHECKING { c_custid: int key, c_bal: int }

// Read both balances of one customer (plus the account header).
txn balance(custid: int) {
    @B0 a := select a_name from ACCOUNTS where a_custid = custid;
    @B1 sv := select s_bal from SAVINGS where s_custid = custid;
    @B2 ck := select c_bal from CHECKING where c_custid = custid;
    return sv.s_bal + ck.c_bal + (count(a.a_name) * 0);
}

// Deposit into checking.
txn depositChecking(custid: int, amount: int) {
    @D1 ck := select c_bal from CHECKING where c_custid = custid;
    @D2 update CHECKING set c_bal = ck.c_bal + amount where c_custid = custid;
    return 0;
}

// Deposit into (or withdraw from) savings.
txn transactSavings(custid: int, amount: int) {
    @T1 sv := select s_bal from SAVINGS where s_custid = custid;
    @T2 update SAVINGS set s_bal = sv.s_bal + amount where s_custid = custid;
    return 0;
}

// Move all funds of custid1 into custid2's checking account.
txn amalgamate(custid1: int, custid2: int) {
    @A1 sv := select s_bal from SAVINGS where s_custid = custid1;
    @A2 ck := select c_bal from CHECKING where c_custid = custid1;
    @A3 update SAVINGS set s_bal = sv.s_bal - sv.s_bal where s_custid = custid1;
    @A4 update CHECKING set c_bal = ck.c_bal - ck.c_bal where c_custid = custid1;
    @A5 ck2 := select c_bal from CHECKING where c_custid = custid2;
    @A6 update CHECKING set c_bal = ck2.c_bal + 1 where c_custid = custid2;
    return 0;
}

// Cash a check if the combined balance covers it.
txn writeCheck(custid: int, amount: int) {
    @W1 sv := select s_bal from SAVINGS where s_custid = custid;
    @W2 ck := select c_bal from CHECKING where c_custid = custid;
    if (sv.s_bal + ck.c_bal >= amount) {
        @W3 update CHECKING set c_bal = ck.c_bal - amount where c_custid = custid;
    }
    return sv.s_bal + ck.c_bal;
}

// Transfer between two checking accounts if funds suffice.
txn sendPayment(custid1: int, custid2: int, amount: int) {
    @P1 ck1 := select c_bal from CHECKING where c_custid = custid1;
    if (ck1.c_bal >= amount) {
        @P2 update CHECKING set c_bal = ck1.c_bal - amount where c_custid = custid1;
        @P3 ck2 := select c_bal from CHECKING where c_custid = custid2;
        @P4 update CHECKING set c_bal = ck2.c_bal + amount where c_custid = custid2;
    }
    return 0;
}
