schema SITEM { si_id: int key, si_name: string, si_value: int }

// Read one item.
txn readItem(k: int) {
    @R1 n := select si_name from SITEM where si_id = k;
    @R2 v := select si_value from SITEM where si_id = k;
    return v.si_value + (count(n.si_name) * 0);
}

// Increment one item.
txn updateItem(k: int) {
    @U1 x := select si_value from SITEM where si_id = k;
    @U2 update SITEM set si_value = x.si_value + 1 where si_id = k;
    return 0;
}
