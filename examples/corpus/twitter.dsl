schema TUSER   { u_id: int key, u_name: string }
schema TWEET   { tw_id: uuid key, tw_u_id: int, tw_text: string }
schema FOLLOWS { fl_follower: int key, fl_followee: int key, fl_active: bool }
schema STATS   { stt_u_id: int key, stt_followers: int, stt_tweets: int }

// Read a tweet.
txn getTweet(tid: uuid) {
    @G1 t := select tw_text from TWEET where tw_id = tid;
    return t.tw_text;
}

// Read a user's profile: counts plus one edge of the follower graph.
txn getUserProfile(uid: int, target: int) {
    @G2 u := select u_name from TUSER where u_id = uid;
    @G3 s := select stt_followers, stt_tweets from STATS where stt_u_id = uid;
    @G4 f := select fl_active from FOLLOWS where fl_follower = uid && fl_followee = target;
    return s.stt_followers + count(f.fl_active) + count(u.u_name);
}

// Post a tweet and bump the author's tweet count.
txn postTweet(uid: int, text: string) {
    @P1 insert into TWEET values (tw_id = uuid(), tw_u_id = uid, tw_text = text);
    @P2 tc := select stt_tweets from STATS where stt_u_id = uid;
    @P3 update STATS set stt_tweets = tc.stt_tweets + 1 where stt_u_id = uid;
    return 0;
}

// Follow a user and bump their follower count.
txn follow(uid: int, target: int) {
    @F1 insert into FOLLOWS values (fl_follower = uid, fl_followee = target, fl_active = true);
    @F2 fc := select stt_followers from STATS where stt_u_id = target;
    @F3 update STATS set stt_followers = fc.stt_followers + 1 where stt_u_id = target;
    return 0;
}

// Unfollow a user.
txn unfollow(uid: int, target: int) {
    @N1 update FOLLOWS set fl_active = false where fl_follower = uid && fl_followee = target;
    @N2 fc := select stt_followers from STATS where stt_u_id = target;
    @N3 update STATS set stt_followers = fc.stt_followers - 1 where stt_u_id = target;
    return 0;
}
