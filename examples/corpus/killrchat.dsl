schema CHATUSER { cu_id: int key, cu_name: string, cu_rooms: int }
schema ROOM     { rm_id: int key, rm_name: string, rm_participants: int, rm_msgcount: int }
schema MESSAGE  { ms_id: uuid key, ms_room: int, ms_text: string }

// Open a new room (counters start at their defaults).
txn createRoom(rid: int, name: string) {
    @K1 insert into ROOM values (rm_id = rid, rm_name = name);
    return 0;
}

// Join a room: bump the room's participant count and the user's room count.
txn joinRoom(uid: int, rid: int) {
    @J1 rp := select rm_participants from ROOM where rm_id = rid;
    @J2 update ROOM set rm_participants = rp.rm_participants + 1 where rm_id = rid;
    @J3 ur := select cu_rooms from CHATUSER where cu_id = uid;
    @J4 update CHATUSER set cu_rooms = ur.cu_rooms + 1 where cu_id = uid;
    return 0;
}

// Leave a room.
txn leaveRoom(uid: int, rid: int) {
    @L1 rp := select rm_participants from ROOM where rm_id = rid;
    @L2 update ROOM set rm_participants = rp.rm_participants - 1 where rm_id = rid;
    @L3 ur := select cu_rooms from CHATUSER where cu_id = uid;
    @L4 update CHATUSER set cu_rooms = ur.cu_rooms - 1 where cu_id = uid;
    return 0;
}

// Post a message and bump the room's message counter.
txn postMessage(rid: int, text: string) {
    @M1 insert into MESSAGE values (ms_id = uuid(), ms_room = rid, ms_text = text);
    @M2 mc := select rm_msgcount from ROOM where rm_id = rid;
    @M3 update ROOM set rm_msgcount = mc.rm_msgcount + 1 where rm_id = rid;
    return 0;
}

// Read a room's header and its message count.
txn readRoom(rid: int) {
    @V1 r := select rm_name from ROOM where rm_id = rid;
    @V2 c := select rm_msgcount from ROOM where rm_id = rid;
    @V3 m := select ms_text from MESSAGE where ms_room = rid;
    return c.rm_msgcount + count(m.ms_text) + count(r.rm_name);
}
