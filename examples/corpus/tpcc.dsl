schema WAREHOUSE  { w_id: int key, w_name: string, w_ytd: int }
schema DISTRICT   { d_id: int key, d_name: string, d_ytd: int, d_next_o_id: int }
schema CUSTOMER   { c_id: int key, c_name: string, c_balance: int,
                    c_ytd_payment: int, c_payment_cnt: int, c_delivery_cnt: int }
schema ORDERS     { o_id: int key, o_c_id: int, o_carrier_id: int, o_ol_cnt: int }
schema NEW_ORDER  { no_o_id: int key, no_d_id: int, no_pending: bool }
schema ORDER_LINE { ol_o_id: int key, ol_number: int key, ol_i_id: int, ol_qty: int, ol_amount: int }
schema ITEM       { i_id: int key, i_name: string, i_price: int }
schema STOCK      { s_i_id: int key, s_quantity: int, s_ytd: int, s_order_cnt: int }
schema HISTORY    { h_id: uuid key, h_c_id: int, h_amount: int }

// Enter a two-line order: advance the district sequence, decrement stock.
txn newOrder(did: int, cid: int, i1: int, q1: int, i2: int, q2: int) {
    @N1 d := select d_next_o_id from DISTRICT where d_id = did;
    @N2 update DISTRICT set d_next_o_id = d.d_next_o_id + 1 where d_id = did;
    @N3 p1 := select i_price from ITEM where i_id = i1;
    @N4 p2 := select i_price from ITEM where i_id = i2;
    @N5 insert into ORDERS values (o_id = d.d_next_o_id, o_c_id = cid, o_carrier_id = 0, o_ol_cnt = 2);
    @N6 insert into NEW_ORDER values (no_o_id = d.d_next_o_id, no_d_id = did, no_pending = true);
    @N7 s1 := select s_quantity from STOCK where s_i_id = i1;
    @N8 update STOCK set s_quantity = s1.s_quantity - q1 where s_i_id = i1;
    @N9 y1 := select s_ytd from STOCK where s_i_id = i1;
    @N10 update STOCK set s_ytd = y1.s_ytd + q1 where s_i_id = i1;
    @N11 oc1 := select s_order_cnt from STOCK where s_i_id = i1;
    @N12 update STOCK set s_order_cnt = oc1.s_order_cnt + 1 where s_i_id = i1;
    @N13 insert into ORDER_LINE values (ol_o_id = d.d_next_o_id, ol_number = 1,
                                        ol_i_id = i1, ol_qty = q1, ol_amount = q1 * p1.i_price);
    @N14 s2 := select s_quantity from STOCK where s_i_id = i2;
    @N15 update STOCK set s_quantity = s2.s_quantity - q2 where s_i_id = i2;
    @N16 y2 := select s_ytd from STOCK where s_i_id = i2;
    @N17 update STOCK set s_ytd = y2.s_ytd + q2 where s_i_id = i2;
    @N18 insert into ORDER_LINE values (ol_o_id = d.d_next_o_id, ol_number = 2,
                                        ol_i_id = i2, ol_qty = q2, ol_amount = q2 * p2.i_price);
    return d.d_next_o_id;
}

// Record a customer payment against warehouse, district, and customer.
txn payment(wid: int, did: int, cid: int, amount: int) {
    @P1 w := select w_ytd from WAREHOUSE where w_id = wid;
    @P2 update WAREHOUSE set w_ytd = w.w_ytd + amount where w_id = wid;
    @P3 dd := select d_ytd from DISTRICT where d_id = did;
    @P4 update DISTRICT set d_ytd = dd.d_ytd + amount where d_id = did;
    @P5 cb := select c_balance from CUSTOMER where c_id = cid;
    @P6 update CUSTOMER set c_balance = cb.c_balance - amount where c_id = cid;
    @P7 cy := select c_ytd_payment from CUSTOMER where c_id = cid;
    @P8 update CUSTOMER set c_ytd_payment = cy.c_ytd_payment + amount where c_id = cid;
    @P9 cp := select c_payment_cnt from CUSTOMER where c_id = cid;
    @P10 update CUSTOMER set c_payment_cnt = cp.c_payment_cnt + 1 where c_id = cid;
    @P11 insert into HISTORY values (h_id = uuid(), h_c_id = cid, h_amount = amount);
    return 0;
}

// Report the status of a customer's latest order.
txn orderStatus(cid: int, oid: int) {
    @O1 c := select c_name, c_balance from CUSTOMER where c_id = cid;
    @O2 o := select o_carrier_id, o_ol_cnt from ORDERS where o_id = oid;
    @O3 l1 := select ol_qty, ol_amount from ORDER_LINE where ol_o_id = oid && ol_number = 1;
    @O4 l2 := select ol_qty, ol_amount from ORDER_LINE where ol_o_id = oid && ol_number = 2;
    return l1.ol_amount + l2.ol_amount + c.c_balance + o.o_ol_cnt;
}

// Deliver a pending order and credit the customer.
txn delivery(oid: int, cid: int) {
    @V1 n := select no_pending from NEW_ORDER where no_o_id = oid;
    if (n.no_pending) {
        @V2 delete from NEW_ORDER where no_o_id = oid;
        @V3 update ORDERS set o_carrier_id = 5 where o_id = oid;
        @V4 l := select ol_amount from ORDER_LINE where ol_o_id = oid && ol_number = 1;
        @V5 cb := select c_balance from CUSTOMER where c_id = cid;
        @V6 update CUSTOMER set c_balance = cb.c_balance + l.ol_amount where c_id = cid;
        @V7 dc := select c_delivery_cnt from CUSTOMER where c_id = cid;
        @V8 update CUSTOMER set c_delivery_cnt = dc.c_delivery_cnt + 1 where c_id = cid;
    }
    return 0;
}

// Check stock against the district's order horizon.
txn stockLevel(did: int, i1: int, threshold: int) {
    @L1 d := select d_next_o_id from DISTRICT where d_id = did;
    @L2 s := select s_quantity from STOCK where s_i_id = i1;
    return (d.d_next_o_id * 0) + s.s_quantity - threshold;
}
