schema PATIENT      { pt_id: int key, pt_name: string }
schema PHARMACY     { ph_id: int key, ph_name: string, ph_processed: int }
schema FACILITY     { fc_id: int key, fc_name: string }
schema STAFF        { stf_id: int key, stf_name: string, stf_fc_id: int }
schema PRESCRIPTION { pr_id: int key, pr_pat_id: int, pr_ph_id: int, pr_processed: bool }
schema TREATMENT    { tr_id: int key, tr_pat_id: int, tr_done: bool }
schema MEDICATION   { md_id: int key, md_name: string, md_stock: int }

// File a new prescription and bump the pharmacy's counter.
txn createPrescription(prid: int, pat: int, ph: int) {
    @C1 insert into PRESCRIPTION values (pr_id = prid, pr_pat_id = pat, pr_ph_id = ph, pr_processed = false);
    @C2 pc := select ph_processed from PHARMACY where ph_id = ph;
    @C3 update PHARMACY set ph_processed = pc.ph_processed + 1 where ph_id = ph;
    return 0;
}

// Mark a prescription processed and take the drug from stock.
txn processPrescription(prid: int, md: int) {
    @X1 update PRESCRIPTION set pr_processed = true where pr_id = prid;
    @X2 ms := select md_stock from MEDICATION where md_id = md;
    @X3 update MEDICATION set md_stock = ms.md_stock - 1 where md_id = md;
    return 0;
}

// Point reads.
txn getPrescription(prid: int) {
    @Q1 p := select pr_pat_id, pr_processed from PRESCRIPTION where pr_id = prid;
    return p.pr_pat_id;
}
txn getPatient(pat: int) {
    @Q2 p := select pt_name from PATIENT where pt_id = pat;
    return count(p.pt_name);
}
txn getPharmacy(ph: int) {
    @Q3 p := select ph_name from PHARMACY where ph_id = ph;
    @Q4 c := select ph_processed from PHARMACY where ph_id = ph;
    return c.ph_processed;
}
txn getFacilityStaff(fc: int, stf: int) {
    @Q5 f := select fc_name from FACILITY where fc_id = fc;
    @Q6 s := select stf_name from STAFF where stf_id = stf;
    return count(f.fc_name) + count(s.stf_name);
}

// Close out a treatment.
txn completeTreatment(tr: int) {
    @W1 update TREATMENT set tr_done = true where tr_id = tr;
    return 0;
}
