schema FLIGHT         { f_id: int key, f_status: int, f_base_price: int, f_seats_left: int }
schema SCUSTOMER      { c2_id: int key, c2_name: string, c2_balance: int, c2_iattr: int }
schema RESERVATION    { r_f_id: int key, r_c_id: int key, r_seat: int, r_price: int, r_active: bool }
schema AIRPORT        { ap_id: int key, ap_code: string }
schema AIRLINE        { al_id: int key, al_name: string }
schema FREQUENT_FLYER { ff_c_id: int key, ff_al_id: int key, ff_miles: int }
schema CONFIG         { cf_id: int key, cf_val: int }
schema AIRPORT_DIST   { ad_id: int key, ad_dist: int }

// Browse flights: read-only fan-out over the static tables.
txn findFlights(fid: int, ap: int, al: int, cf: int) {
    @F1 f := select f_status, f_base_price from FLIGHT where f_id = fid;
    @F2 a := select ap_code from AIRPORT where ap_id = ap;
    @F3 n := select al_name from AIRLINE where al_id = al;
    @F4 g := select cf_val from CONFIG where cf_id = cf;
    @F5 d := select ad_dist from AIRPORT_DIST where ad_id = ap;
    return f.f_base_price + d.ad_dist + count(a.ap_code) + count(n.al_name) + g.cf_val;
}

// How many seats remain on a flight?
txn findOpenSeats(fid: int) {
    @S1 s := select f_seats_left, f_base_price from FLIGHT where f_id = fid;
    return s.f_seats_left;
}

// Book a seat: take a seat from the flight, record the reservation, credit
// frequent-flyer miles.
txn newReservation(fid: int, cid: int, al: int, seat: int) {
    @R1 sl := select f_seats_left from FLIGHT where f_id = fid;
    @R2 update FLIGHT set f_seats_left = sl.f_seats_left - 1 where f_id = fid;
    @R3 insert into RESERVATION values (r_f_id = fid, r_c_id = cid, r_seat = seat,
                                        r_price = 100, r_active = true);
    @R4 ia := select c2_iattr from SCUSTOMER where c2_id = cid;
    @R5 update SCUSTOMER set c2_iattr = ia.c2_iattr + 1 where c2_id = cid;
    @R6 fm := select ff_miles from FREQUENT_FLYER where ff_c_id = cid && ff_al_id = al;
    @R7 update FREQUENT_FLYER set ff_miles = fm.ff_miles + 500 where ff_c_id = cid && ff_al_id = al;
    return 0;
}

// Update customer attributes (a blind write racing newReservation).
txn updateCustomer(cid: int, attr: int) {
    @U1 c := select c2_balance from SCUSTOMER where c2_id = cid;
    @U2 update SCUSTOMER set c2_iattr = attr where c2_id = cid;
    return c.c2_balance;
}

// Move a reservation to a different seat.
txn updateReservation(fid: int, cid: int, seat: int) {
    @M1 update RESERVATION set r_seat = seat where r_f_id = fid && r_c_id = cid;
    return 0;
}

// Cancel a reservation: free the seat and refund the customer.
txn deleteReservation(fid: int, cid: int) {
    @D1 r := select r_price, r_active from RESERVATION where r_f_id = fid && r_c_id = cid;
    if (r.r_active) {
        @D2 update RESERVATION set r_active = false where r_f_id = fid && r_c_id = cid;
        @D3 sl := select f_seats_left from FLIGHT where f_id = fid;
        @D4 update FLIGHT set f_seats_left = sl.f_seats_left + 1 where f_id = fid;
        @D5 cb := select c2_balance from SCUSTOMER where c2_id = cid;
        @D6 update SCUSTOMER set c2_balance = cb.c2_balance + r.r_price where c2_id = cid;
    }
    return 0;
}
