schema MSG  { m_id: int key, m_body: int }
schema FEED { f_id: int key, f_body: int }

// Publish (or edit) the canonical message row.
txn post(m: int, body: int) {
    @W1 update MSG set m_body = body where m_id = m;
    return 0;
}

// Fan the message out into one follower's feed row.
txn relay(m: int, f: int) {
    @R2 x := select m_body from MSG where m_id = m;
    @W2 update FEED set f_body = x.m_body where f_id = f;
    return 0;
}

// Read the feed, then backfill from the canonical table.
txn timeline(f: int, m: int) {
    @R3 y := select f_body from FEED where f_id = f;
    @R4 z := select m_body from MSG where m_id = m;
    return y.f_body + z.m_body;
}
