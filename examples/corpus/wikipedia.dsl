schema PAGE          { pg_id: int key, pg_title: string, pg_latest: int, pg_len: int }
schema REVISION      { rv_id: uuid key, rv_page: int, rv_text: int }
schema PAGETEXT      { tx_id: int key, tx_content: string }
schema WIKIUSER      { wu_id: int key, wu_name: string, wu_editcount: int }
schema WATCHLIST     { wl_u: int key, wl_page: int key, wl_active: bool }
schema LOGGING       { lg_id: uuid key, lg_page: int, lg_action: string }
schema RECENTCHANGES { rc_id: uuid key, rc_page: int }
schema IPBLOCKS      { ipb_id: int key, ipb_active: bool }
schema USERGROUPS    { ug_u: int key, ug_group: string }
schema PAGERESTRICT  { ps_page: int key, ps_level: int }
schema CATEGORY      { ct_id: int key, ct_name: string }
schema SITESTATS     { ss_id: int key, ss_edits: int }

// Anonymous page view.
txn getPageAnonymous(pid: int, ipb: int) {
    @A1 p := select pg_title, pg_latest from PAGE where pg_id = pid;
    @A2 t := select tx_content from PAGETEXT where tx_id = p.pg_latest;
    @A3 b := select ipb_active from IPBLOCKS where ipb_id = ipb;
    @A4 r := select ps_level from PAGERESTRICT where ps_page = pid;
    return count(t.tx_content) + r.ps_level + count(b.ipb_active);
}

// Authenticated page view.
txn getPageAuthenticated(pid: int, uid: int) {
    @B1 u := select wu_name from WIKIUSER where wu_id = uid;
    @B2 g := select ug_group from USERGROUPS where ug_u = uid;
    @B3 p := select pg_latest from PAGE where pg_id = pid;
    @B4 t := select tx_content from PAGETEXT where tx_id = p.pg_latest;
    return count(t.tx_content) + count(g.ug_group) + count(u.wu_name);
}

// Watch a page.
txn addToWatchlist(uid: int, pid: int) {
    @W1 update WATCHLIST set wl_active = true where wl_u = uid && wl_page = pid;
    @W2 c := select ct_name from CATEGORY where ct_id = pid;
    return count(c.ct_name);
}

// Unwatch a page.
txn removeFromWatchlist(uid: int, pid: int) {
    @X1 update WATCHLIST set wl_active = false where wl_u = uid && wl_page = pid;
    return 0;
}

// Edit a page: store the new text, advance the page pointer, log the edit.
txn updatePage(pid: int, uid: int, newtid: int, content: string) {
    @E1 insert into PAGETEXT values (tx_id = newtid, tx_content = content);
    @E2 insert into REVISION values (rv_id = uuid(), rv_page = pid, rv_text = newtid);
    @E3 update PAGE set pg_latest = newtid where pg_id = pid;
    @E4 ec := select wu_editcount from WIKIUSER where wu_id = uid;
    @E5 update WIKIUSER set wu_editcount = ec.wu_editcount + 1 where wu_id = uid;
    @E6 ss := select ss_edits from SITESTATS where ss_id = 1;
    @E7 update SITESTATS set ss_edits = ss.ss_edits + 1 where ss_id = 1;
    @E8 insert into LOGGING values (lg_id = uuid(), lg_page = pid, lg_action = "edit");
    @E9 insert into RECENTCHANGES values (rc_id = uuid(), rc_page = pid);
    return 0;
}
