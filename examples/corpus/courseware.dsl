schema STUDENT { st_id: int key, st_name: string, st_em_id: int, st_co_id: int, st_reg: bool }
schema COURSE  { co_id: int key, co_avail: bool, co_st_cnt: int }
schema EMAIL   { em_id: int key, em_addr: string }

// Fetch a student's record, email address, and course availability.
txn getSt(id: int) {
    @S1 x := select * from STUDENT where st_id = id;
    @S2 y := select em_addr from EMAIL where em_id = x.st_em_id;
    @S3 z := select co_avail from COURSE where co_id = x.st_co_id;
    return count(y.em_addr) + count(z.co_avail);
}

// Update a student's name and email address.
txn setSt(id: int, name: string, email: string) {
    @S4 x := select st_em_id from STUDENT where st_id = id;
    @U1 update STUDENT set st_name = name where st_id = id;
    @U2 update EMAIL set em_addr = email where em_id = x.st_em_id;
    return 0;
}

// Register a student for a course.
txn regSt(id: int, course: int) {
    @U3 update STUDENT set st_co_id = course, st_reg = true where st_id = id;
    @S5 x := select co_st_cnt from COURSE where co_id = course;
    @U4 update COURSE set co_st_cnt = x.co_st_cnt + 1, co_avail = true where co_id = course;
    return 0;
}

// Drop a student from their course.
txn unregSt(id: int, course: int) {
    @U5 update STUDENT set st_reg = false where st_id = id;
    @S6 x := select co_st_cnt from COURSE where co_id = course;
    @U6 update COURSE set co_st_cnt = x.co_st_cnt - 1 where co_id = course;
    return 0;
}

// Check whether a course is open and how full it is.
txn checkAvail(course: int) {
    @S7 a := select co_avail from COURSE where co_id = course;
    @S8 c := select co_st_cnt from COURSE where co_id = course;
    return c.co_st_cnt + count(a.co_avail);
}
