//! Repairing SmallBank and observing the safety difference dynamically:
//! concurrent deposits lose updates in the original program but never in
//! the repaired one.
//!
//! Run with `cargo run --example smallbank_repair`.

use atropos::dsl::Value;
use atropos::prelude::*;
use atropos::semantics::{Interpreter, Invocation, ViewStrategy};

fn lost_deposit_runs(program: &atropos::dsl::Program, is_repaired: bool, runs: u64) -> u64 {
    let mut lost = 0;
    for run in 0..runs {
        let mut interp = Interpreter::new(program, ViewStrategy::Serial, run);
        // Seed customer 0 with 100 in checking (repaired programs keep the
        // balance in an append-only log, so seed one log entry instead).
        for schema in &program.schemas {
            if schema.name == "CHECKING" {
                interp.populate("CHECKING", vec![Value::Int(0)], [("c_bal", Value::Int(100))]);
            } else if is_repaired && schema.name.starts_with("CHECKING") && schema.name.ends_with("_LOG") {
                let field = schema.value_fields()[0].to_owned();
                interp.populate(
                    &schema.name,
                    vec![Value::Int(0), Value::Uuid(0xFFFF_0000 + run as u128)],
                    [(field, Value::Int(100))],
                );
            }
        }
        // Two concurrent deposits of 10 under eventually consistent views.
        interp.set_strategy(ViewStrategy::RandomAtoms { p: 0.5 });
        let a = interp
            .invoke(&Invocation::new(
                "depositChecking",
                vec![Value::Int(0), Value::Int(10)],
            ))
            .unwrap();
        let b = interp
            .invoke(&Invocation::new(
                "depositChecking",
                vec![Value::Int(0), Value::Int(10)],
            ))
            .unwrap();
        // Interleave: both read, then both write.
        interp.step(a).unwrap();
        interp.step(b).unwrap();
        interp.run_to_completion(a).unwrap();
        interp.run_to_completion(b).unwrap();
        // Settle and audit.
        interp.set_strategy(ViewStrategy::Serial);
        let id = interp
            .invoke(&Invocation::new("balance", vec![Value::Int(0)]))
            .unwrap();
        interp.run_to_completion(id).unwrap();
        let total = interp.return_value(id).and_then(Value::as_int).unwrap();
        if total != 120 {
            lost += 1;
        }
    }
    lost
}

fn main() {
    let program = atropos::workloads::smallbank::program();
    let report = repair_program(&program, ConsistencyLevel::EventualConsistency);

    println!(
        "SmallBank: {} anomalies before, {} after repair",
        report.initial.len(),
        report.remaining.len()
    );
    println!("Refactorings:");
    for s in &report.steps {
        println!("  {s}");
    }
    println!(
        "\nTransactions still unsafe (would run under SC in AT-SC mode): {:?}",
        report.unsafe_transactions()
    );

    let runs = 200;
    let before = lost_deposit_runs(&program, false, runs);
    let after = lost_deposit_runs(&report.repaired, true, runs);
    println!("\nConcurrent-deposit audit over {runs} adversarial runs:");
    println!("  original program lost a deposit in {before} runs");
    println!("  repaired program lost a deposit in {after} runs");
    assert_eq!(after, 0, "the functional log must never lose deposits");
}
