//! Quickstart: repair the paper's running example (Fig. 1 → Fig. 3).
//!
//! Run with `cargo run --example quickstart`.

use atropos::prelude::*;

fn main() {
    // The course-management program of Fig. 1: three tables, three
    // transactions, and several serializability anomalies under eventual
    // consistency.
    let source = r#"
        schema STUDENT { st_id: int key, st_name: string, st_em_id: int,
                         st_co_id: int, st_reg: bool }
        schema COURSE  { co_id: int key, co_avail: bool, co_st_cnt: int }
        schema EMAIL   { em_id: int key, em_addr: string }

        txn getSt(id: int) {
            x := select * from STUDENT where st_id = id;
            y := select em_addr from EMAIL where em_id = x.st_em_id;
            z := select co_avail from COURSE where co_id = x.st_co_id;
            return count(y.em_addr) + count(z.co_avail);
        }
        txn setSt(id: int, name: string, email: string) {
            x := select st_em_id from STUDENT where st_id = id;
            update STUDENT set st_name = name where st_id = id;
            update EMAIL set em_addr = email where em_id = x.st_em_id;
            return 0;
        }
        txn regSt(id: int, course: int) {
            update STUDENT set st_co_id = course, st_reg = true where st_id = id;
            x := select co_st_cnt from COURSE where co_id = course;
            update COURSE set co_st_cnt = x.co_st_cnt + 1, co_avail = true
                where co_id = course;
            return 0;
        }
    "#;

    let program = parse(source).expect("the example parses");
    check_program(&program).expect("the example type checks");

    // 1. Detect anomalous access pairs under eventual consistency.
    let anomalies = detect_anomalies(&program, ConsistencyLevel::EventualConsistency);
    println!("Anomalous access pairs under EC:");
    for a in &anomalies {
        println!("  {a}");
    }

    // 2. Repair by schema refactoring.
    let report = repair_program(&program, ConsistencyLevel::EventualConsistency);
    println!("\nApplied refactorings:");
    for s in &report.steps {
        println!("  {s}");
    }
    println!(
        "\nAnomalies: {} before, {} after ({}% repaired)",
        report.initial.len(),
        report.remaining.len(),
        (report.repair_ratio() * 100.0) as u32
    );

    // 3. The refactored program (compare with the paper's Fig. 3).
    println!("\nRefactored program:\n{}", print_program(&report.repaired));

    // 4. The value correspondences that justify the refinement.
    println!("Value correspondences:");
    for vc in &report.vcs {
        println!("  {vc}");
    }
}
