//! A miniature of the paper's §7.2 performance experiment: SmallBank on the
//! simulated US cluster under the four configurations (EC, AT-EC, SC,
//! AT-SC).
//!
//! Run with `cargo run --release --example perf_comparison`.

use atropos::prelude::*;
use atropos::sim::{run_simulation, ClusterConfig, SimConfig};
use atropos::workloads::{derive_workload, TableSpec};

fn main() {
    let bench = atropos::workloads::benchmark("SmallBank").unwrap();
    let report = repair_program(&bench.program, ConsistencyLevel::EventualConsistency);
    let unsafe_txns: Vec<String> = report.unsafe_transactions().into_iter().collect();
    let spec = TableSpec::default();

    let original = derive_workload(&bench.program, &bench.mix, &spec);
    let repaired = derive_workload(&report.repaired, &bench.mix, &spec);

    println!("{:<8} {:>10} {:>12} {:>12}", "config", "tps", "avg ms", "p99 ms");
    let mut measured = Vec::new();
    for (label, workload) in [
        ("EC", original.clone()),
        ("AT-EC", repaired.clone()),
        ("SC", original.all_serializable()),
        ("AT-SC", repaired.with_serializable(&unsafe_txns)),
    ] {
        let mut cfg = SimConfig::new(ClusterConfig::us(), 100);
        cfg.duration_ms = 30_000.0;
        let stats = run_simulation(&workload, &cfg);
        println!(
            "{label:<8} {:>10.0} {:>12.1} {:>12.1}",
            stats.throughput_tps, stats.avg_latency_ms, stats.p99_latency_ms
        );
        measured.push((label, stats));
    }

    let tps = |l: &str| measured.iter().find(|(n, _)| *n == l).unwrap().1.throughput_tps;
    let lat = |l: &str| measured.iter().find(|(n, _)| *n == l).unwrap().1.avg_latency_ms;
    println!(
        "\nAT-SC improves on fully serialized SC by {:.0}% throughput and {:.0}% latency",
        100.0 * (tps("AT-SC") / tps("SC") - 1.0),
        100.0 * (1.0 - lat("AT-SC") / lat("SC")),
    );
    println!("(the paper reports +120% throughput and -45% latency on its AWS clusters)");
}
